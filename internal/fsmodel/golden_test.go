package fsmodel

import (
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// goldenKernels loads the three paper kernels at reduced-but-nontrivial
// scale for backend cross-checking.
func goldenKernels(t *testing.T) map[string]*loopir.Nest {
	t.Helper()
	heat, err := kernels.Heat(12, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dft, err := kernels.DFT(96)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := kernels.LinReg(128, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*loopir.Nest{"heat": heat.Nest, "dft": dft.Nest, "linreg": lr.Nest}
}

// requireIdentical compares every externally observable field of two
// results except the Backend tag itself.
func requireIdentical(t *testing.T, label string, dense, mapped *Result) {
	t.Helper()
	if dense.Backend != BackendDense {
		t.Fatalf("%s: dense run used backend %v", label, dense.Backend)
	}
	if mapped.Backend != BackendMap {
		t.Fatalf("%s: map run used backend %v", label, mapped.Backend)
	}
	type counters struct {
		FSCases, Invalidations, Iterations, Steps, Accesses int64
		ColdMisses, CapacityEvictions                       int64
		ChunkRunsEvaluated, ChunkRunsTotal                  int64
		Truncated                                           bool
	}
	d := counters{dense.FSCases, dense.Invalidations, dense.Iterations, dense.Steps, dense.Accesses,
		dense.ColdMisses, dense.CapacityEvictions, dense.ChunkRunsEvaluated, dense.ChunkRunsTotal, dense.Truncated}
	m := counters{mapped.FSCases, mapped.Invalidations, mapped.Iterations, mapped.Steps, mapped.Accesses,
		mapped.ColdMisses, mapped.CapacityEvictions, mapped.ChunkRunsEvaluated, mapped.ChunkRunsTotal, mapped.Truncated}
	if d != m {
		t.Fatalf("%s: counters differ:\ndense: %+v\nmap:   %+v", label, d, m)
	}
	if !reflect.DeepEqual(dense.PerRun, mapped.PerRun) {
		t.Fatalf("%s: PerRun differs:\ndense: %v\nmap:   %v", label, dense.PerRun, mapped.PerRun)
	}
	if !reflect.DeepEqual(dense.ByRef, mapped.ByRef) {
		t.Fatalf("%s: ByRef differs:\ndense: %+v\nmap:   %+v", label, dense.ByRef, mapped.ByRef)
	}
	if !reflect.DeepEqual(dense.hotLines, mapped.hotLines) {
		t.Fatalf("%s: hot lines differ:\ndense: %v\nmap:   %v", label, dense.hotLines, mapped.hotLines)
	}
}

// TestBackendsBitIdentical is the golden cross-check the dense rewrite
// must satisfy: on every paper kernel, under both counting modes, with FS
// and FS-free chunks, with per-run recording and hot-line tracking on, the
// dense and map backends produce identical results in every field.
func TestBackendsBitIdentical(t *testing.T) {
	nests := goldenKernels(t)
	chunks := map[string][2]int64{
		"heat":   {kernels.HeatFSChunk, kernels.HeatNFSChunk},
		"dft":    {kernels.DFTFSChunk, kernels.DFTNFSChunk},
		"linreg": {kernels.LinRegFSChunk, kernels.LinRegNFSChunk},
	}
	for name, nest := range nests {
		for _, chunk := range chunks[name] {
			for _, mode := range []CountingMode{CountPaperPhi, CountMESI} {
				opts := Options{
					Machine: machine.Paper48(), NumThreads: 8, Chunk: chunk,
					Counting: mode, RecordPerRun: true, TrackHotLines: true,
				}
				opts.Backend = BackendDense
				dense, err := Analyze(nest, opts)
				if err != nil {
					t.Fatalf("%s chunk=%d mode=%v dense: %v", name, chunk, mode, err)
				}
				opts.Backend = BackendMap
				mapped, err := Analyze(nest, opts)
				if err != nil {
					t.Fatalf("%s chunk=%d mode=%v map: %v", name, chunk, mode, err)
				}
				label := name
				requireIdentical(t, label, dense, mapped)
			}
		}
	}
}

// TestBackendsIdenticalSmallStack repeats the cross-check with a tiny
// stack depth so capacity evictions (the subtlest bookkeeping difference
// between the two directory representations) dominate.
func TestBackendsIdenticalSmallStack(t *testing.T) {
	nests := goldenKernels(t)
	for name, nest := range nests {
		for _, depth := range []int{1, 2, 7} {
			opts := Options{
				Machine: machine.Paper48(), NumThreads: 4, Chunk: 1,
				StackDepth: depth, Counting: CountMESI, RecordPerRun: true, TrackHotLines: true,
			}
			opts.Backend = BackendDense
			dense, err := Analyze(nest, opts)
			if err != nil {
				t.Fatalf("%s depth=%d dense: %v", name, depth, err)
			}
			opts.Backend = BackendMap
			mapped, err := Analyze(nest, opts)
			if err != nil {
				t.Fatalf("%s depth=%d map: %v", name, depth, err)
			}
			requireIdentical(t, name, dense, mapped)
		}
	}
}

// TestAutoSelectsDenseOnPaperKernels checks the default backend resolves
// to the dense path for every paper kernel (their symbol extents are
// contiguous and comfortably within budget).
func TestAutoSelectsDenseOnPaperKernels(t *testing.T) {
	for name, nest := range goldenKernels(t) {
		res, err := Analyze(nest, Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Backend != BackendDense {
			t.Errorf("%s: auto backend = %v, want dense", name, res.Backend)
		}
	}
}

// TestSetAssocForcesMapBackend checks the set-associative ablation always
// runs on the general path, and that requesting dense for it errors.
func TestSetAssocForcesMapBackend(t *testing.T) {
	nest := goldenKernels(t)["linreg"]
	opts := Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1, Associativity: 8}
	res, err := Analyze(nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendMap {
		t.Fatalf("set-assoc backend = %v, want map", res.Backend)
	}
	opts.Backend = BackendDense
	if _, err := Analyze(nest, opts); err == nil {
		t.Fatal("dense backend with set-assoc ablation should error")
	}
}

// TestDenseRangeFallsBackToMap drives an affine reference outside its
// symbol's declared extent: the dense window cannot contain it, so the
// auto path must restart on the map backend and still count correctly.
func TestDenseRangeFallsBackToMap(t *testing.T) {
	src := `
#define N 8
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(2)
for (i = 0; i < N; i++) a[i + 63] = 1.0;
`
	nest := loadNest(t, src)
	res, err := Analyze(nest, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if res.Backend != BackendMap {
		t.Fatalf("backend = %v, want map fallback", res.Backend)
	}
	forced, err := Analyze(nest, Options{Machine: machine.Paper48(), Backend: BackendMap})
	if err != nil {
		t.Fatal(err)
	}
	if res.FSCases != forced.FSCases || res.Accesses != forced.Accesses {
		t.Fatalf("fallback result differs from map run: %d/%d vs %d/%d",
			res.FSCases, res.Accesses, forced.FSCases, forced.Accesses)
	}
}
