package fsmodel

// Steady-state chunk-run extrapolation (Options.Extrapolate): the
// paper's Fig. 6 observation is that FS counts grow linearly in chunk
// runs once the cache states reach steady state, because each run is the
// previous run shifted by a fixed byte offset. The compiled executor
// therefore simulates runs only until the per-run deltas of every
// counter (including per-ref attribution) are exactly periodic over
// three consecutive periods, then closes the remaining runs in O(period)
// integer arithmetic.
//
// Eligibility is deliberately narrow — the closure is only used where it
// is provably congruent:
//
//   - Every loop bound must be a compile-time constant, so the
//     trip/schedule structure of run i+p is identical to run i's
//     (shifted in addresses only).
//   - The parallel trip count must divide into whole cycles
//     (parTrips % (chunk·threads) == 0). Then every thread owns the same
//     trip count, the team never drifts, and every remaining run —
//     including the final one — is congruent to a phase-mate inside the
//     confirmed window. With ragged ownership (e.g. heat's 4094 trips
//     over 48 threads) light threads exhaust whole lockstep steps early:
//     the team's internal skew grows with the outer trip index, the
//     trailing runs lose members, and no state-aliasing jump short of
//     lcm(per-thread trip counts) steps is congruent — such nests fall
//     back to full simulation.
//   - When the parallel loop has enclosing loops, candidate periods are
//     restricted to multiples of the runs-per-instantiation count, so a
//     period can never hide an instantiation-boundary anomaly inside a
//     confirmation window.
//   - History recording starts only once every LRU stack is at capacity:
//     periodic deltas observed during the fill transient describe
//     eviction-free warm-up behaviour, not the steady state the
//     remaining runs will exhibit.
//   - Runs that never become periodic simply fall back to full
//     simulation (detection switches off after a bounded effort).
//
// The differential gate in extrapolate_test.go re-simulates fully and
// asserts bit-equality on every kernel in the matrix.

// exVec is a cumulative counter snapshot at a chunk-run boundary.
type exVec struct {
	fs, inv, cold, evict, iters, steps, acc int64
	byRef                                   []int64
}

type extrapolator struct {
	rpi     int64 // candidate periods are multiples of this
	nextTry int64 // delta count at which to next attempt detection
	off     bool

	run      int64   // 1-based index of the run whose boundary is current
	firstRun int64   // run index hist[0] was captured at (post-warm-up)
	hist     []exVec // hist[i] = snapshot at the start of run firstRun+i
}

const exMaxDetect = int64(1) << 14

// newExtrapolator returns nil when the run is ineligible; the executor
// then simply simulates everything.
func newExtrapolator(r *run) *extrapolator {
	if !r.extrapolate || r.trackRuns || r.trackHot {
		return nil
	}
	total := r.res.ChunkRunsTotal
	if total <= 0 {
		return nil
	}
	for _, l := range r.nest.Loops {
		if _, ok := l.ConstTripCount(); !ok {
			return nil
		}
	}
	parLevel := r.nest.ParLevel
	if parLevel < 0 {
		parLevel = 0
	}
	// The warm-up guard below watches the lazy dense backend's occupancy.
	if r.lz == nil {
		return nil
	}
	parTrips, _ := r.nest.Loops[parLevel].ConstTripCount()
	if parTrips%(r.plan.Chunk*int64(r.plan.NumThreads)) != 0 {
		return nil
	}
	ex := &extrapolator{rpi: 1}
	// Advancing one period must shift every reference by a whole number
	// of cache lines, or the confirmation window can sit entirely between
	// two line crossings of a slow-moving reference (e.g. dft's x[k],
	// which moves 8 bytes per outer trip and crosses a line every 8th)
	// and certify a period the true delta sequence breaks later. The
	// byte shift per period unit is the ref's outermost-trip stride when
	// the parallel loop is nested, or chunk·threads·stride when the
	// parallel loop is outermost; all alignment factors divide the
	// power-of-two line size, so their lcm is their max.
	tripsPerRun := r.plan.Chunk * int64(r.plan.NumThreads)
	if parLevel > 0 {
		n0, ok := r.nest.Loops[0].ConstTripCount()
		if !ok || n0 <= 0 || total%n0 != 0 {
			return nil
		}
		ex.rpi = total / n0 // runs per outermost trip
		tripsPerRun = 1     // shift per unit is one outermost trip
	}
	align := int64(1)
	for i := 0; i < r.ap.NumRefs(); i++ {
		s := r.ap.TripByteStride(i, 0) * tripsPerRun
		if s < 0 {
			s = -s
		}
		if s == 0 || s%r.lineSize == 0 {
			continue
		}
		// f = lineSize / gcd(lineSize, s); both powers of two, so the lcm
		// of the per-ref factors below is their max.
		if f := r.lineSize / (s & -s); f > align {
			align = f
		}
	}
	ex.rpi *= align
	if ex.rpi <= 0 || 3*ex.rpi+2 > total || 3*ex.rpi+2 > exMaxDetect {
		return nil
	}
	ex.nextTry = 3 * ex.rpi
	if ex.nextTry < 12 {
		ex.nextTry = 12
	}
	return ex
}

func (ex *extrapolator) capture(r *run) exVec {
	res := r.res
	v := exVec{res.FSCases, res.Invalidations, res.ColdMisses, res.CapacityEvictions,
		res.Iterations, res.Steps, res.Accesses, nil}
	if len(res.ByRef) > 0 {
		v.byRef = make([]int64, len(res.ByRef))
		for i := range res.ByRef {
			v.byRef[i] = res.ByRef[i].FSCases
		}
	}
	return v
}

// deltaEq reports whether run deltas i and j (1-based run indices) are
// identical in every counter.
func (ex *extrapolator) deltaEq(i, j int64) bool {
	a2, a1 := &ex.hist[i], &ex.hist[i-1]
	b2, b1 := &ex.hist[j], &ex.hist[j-1]
	if a2.fs-a1.fs != b2.fs-b1.fs ||
		a2.inv-a1.inv != b2.inv-b1.inv ||
		a2.cold-a1.cold != b2.cold-b1.cold ||
		a2.evict-a1.evict != b2.evict-b1.evict ||
		a2.iters-a1.iters != b2.iters-b1.iters ||
		a2.steps-a1.steps != b2.steps-b1.steps ||
		a2.acc-a1.acc != b2.acc-b1.acc {
		return false
	}
	for k := range a2.byRef {
		if a2.byRef[k]-a1.byRef[k] != b2.byRef[k]-b1.byRef[k] {
			return false
		}
	}
	return true
}

// periodic reports whether the last 3p deltas are p-periodic.
func (ex *extrapolator) periodic(p, n int64) bool {
	for i := n - 2*p + 1; i <= n; i++ {
		if !ex.deltaEq(i, i-p) {
			return false
		}
	}
	return true
}

func (ex *extrapolator) detect(n int64) int64 {
	for p := ex.rpi; 3*p <= n; p += ex.rpi {
		if ex.periodic(p, n) {
			return p
		}
	}
	return 0
}

// warm reports whether the cache state is past the fill transient:
// periodic deltas observed while the LRU stacks are still filling
// describe eviction-free warm-up behaviour, not the steady state the
// remaining runs will exhibit, so history only starts once every thread
// is at capacity (unbounded stacks never evict and are warm at once).
func (ex *extrapolator) warm(r *run) bool {
	lz := r.lz
	if lz.cap == 0 {
		return true
	}
	for t := 0; t < lz.threads; t++ {
		if lz.live[t] < lz.cap {
			return false
		}
	}
	return true
}

// boundary is called by the executor at the start of every chunk run,
// after thread 0's iteration count but before any of the run's accesses.
// It reports closed = true when the totals are final and the executor
// should return immediately.
func (ex *extrapolator) boundary(r *run) (closed bool, err error) {
	if ex.off {
		return false, nil
	}
	ex.run++
	if len(ex.hist) == 0 {
		if !ex.warm(r) {
			return false, nil
		}
		ex.firstRun = ex.run
	}
	ex.hist = append(ex.hist, ex.capture(r))
	n := int64(len(ex.hist)) - 1 // completed run deltas so far
	if n < ex.nextTry {
		return false, nil
	}
	p := ex.detect(n)
	if p == 0 {
		ex.nextTry = 2 * n
		if ex.nextTry > exMaxDetect {
			ex.off = true
			ex.hist = nil
		}
		return false, nil
	}
	return ex.close(r, p)
}

// addDelta accumulates run i's delta into dst.
func (ex *extrapolator) addDelta(dst *exVec, i int64) {
	a2, a1 := &ex.hist[i], &ex.hist[i-1]
	dst.fs += a2.fs - a1.fs
	dst.inv += a2.inv - a1.inv
	dst.cold += a2.cold - a1.cold
	dst.evict += a2.evict - a1.evict
	dst.iters += a2.iters - a1.iters
	dst.steps += a2.steps - a1.steps
	dst.acc += a2.acc - a1.acc
	for k := range a2.byRef {
		dst.byRef[k] += a2.byRef[k] - a1.byRef[k]
	}
}

// addPeriodic accumulates into sum the periodic extension of the
// confirmed window over count runs starting at run B = n+1: whole
// periods scaled, plus a partial prefix of the next.
func (ex *extrapolator) addPeriodic(sum *exVec, n, p, count int64) {
	q, rem := count/p, count%p
	if q > 0 {
		var period exVec
		period.byRef = make([]int64, len(sum.byRef))
		for j := n - p + 1; j <= n; j++ {
			ex.addDelta(&period, j)
		}
		sum.fs += q * period.fs
		sum.inv += q * period.inv
		sum.cold += q * period.cold
		sum.evict += q * period.evict
		sum.iters += q * period.iters
		sum.steps += q * period.steps
		sum.acc += q * period.acc
		for k := range sum.byRef {
			sum.byRef[k] += q * period.byRef[k]
		}
	}
	for k := int64(1); k <= rem; k++ {
		ex.addDelta(sum, n+k-p)
	}
}

// apply folds a closure delta into the result and credits the closed
// accesses against the budget at the same amortized boundaries full
// simulation would have hit.
func (ex *extrapolator) apply(r *run, sum *exVec) error {
	res := r.res
	res.FSCases += sum.fs
	res.Invalidations += sum.inv
	res.ColdMisses += sum.cold
	res.CapacityEvictions += sum.evict
	res.Iterations += sum.iters
	res.Steps += sum.steps
	for k := range sum.byRef {
		res.ByRef[k].FSCases += sum.byRef[k]
	}
	return r.addAccesses(sum.acc)
}

// close computes the final totals in O(period) additions. The executor
// sits at the start of run B (= firstRun+n); runs B..R-1 close by
// periodic extension, and run R — the last, whose window runs to thread
// exhaustion plus the final probe step — contributes the delta of its
// phase-mate i* ≡ R (mod p): the probe step's count stands in for the
// phase-mate's next-run step, and thread 0's first iteration of run B
// (already counted when the boundary snapshot was taken) replaces the
// phase-mate's next-run iteration, hence one fewer.
func (ex *extrapolator) close(r *run, p int64) (bool, error) {
	res := r.res
	R := res.ChunkRunsTotal
	n := int64(len(ex.hist)) - 1
	B := ex.run // current run index (== firstRun + n)
	M := R - B  // whole runs between here and the start of run R
	if M < 0 {
		ex.off = true
		return false, nil
	}
	var sum exVec
	sum.byRef = make([]int64, len(ex.hist[0].byRef))
	ex.addPeriodic(&sum, n, p, M)
	// hist delta i holds the content of run firstRun+i-1; the final run's
	// phase-mate is the one in the last confirmed period with a congruent
	// run index.
	iStar := n - p + 1 + (R-(ex.firstRun+n-p))%p
	ex.addDelta(&sum, iStar)
	sum.iters--
	res.Extrapolated = true
	res.SimulatedRuns = B - 1
	res.ExtrapolationPeriod = p
	return true, ex.apply(r, &sum)
}
