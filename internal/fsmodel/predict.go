package fsmodel

import (
	"fmt"

	"repro/internal/linreg"
	"repro/internal/loopir"
)

// Prediction is the outcome of the linear-regression prediction model
// (paper Section III-E): the total FS count of the loop extrapolated from
// a small number of evaluated chunk runs.
type Prediction struct {
	// Fit is the least-squares line over (chunk run index, cumulative FS
	// cases).
	Fit linreg.Model
	// SampledRuns is how many chunk runs were actually evaluated;
	// TotalRuns is the loop's x_max.
	SampledRuns int64
	TotalRuns   int64
	// SampledFS is the FS count observed during the sampled prefix;
	// PredictedFS is the extrapolated total (the paper's y_max).
	PredictedFS int64
	SampledFS   int64
	// IterationsEvaluated counts innermost iterations the sampler
	// actually executed — the cost saved versus a full model run.
	IterationsEvaluated int64
	// Sample is the per-run cumulative series the fit was computed from.
	Sample []int64
}

// Predict runs the model for sampleRuns chunk runs, fits y = a·x + b to
// the cumulative FS series, and extrapolates to the loop's total chunk-run
// count.
func Predict(nest *loopir.Nest, opts Options, sampleRuns int64) (*Prediction, error) {
	if sampleRuns < 2 {
		return nil, fmt.Errorf("fsmodel: prediction needs at least 2 chunk runs, got %d", sampleRuns)
	}
	opts.MaxChunkRuns = sampleRuns
	opts.RecordPerRun = true
	res, err := Analyze(nest, opts)
	if err != nil {
		return nil, err
	}
	if res.ChunkRunsTotal == 0 {
		return nil, fmt.Errorf("fsmodel: loop bounds unknown; cannot determine total chunk runs (x_max)")
	}
	series := make([]float64, len(res.PerRun))
	for i, v := range res.PerRun {
		series[i] = float64(v)
	}
	fit, err := linreg.FitPrefix(series, len(series))
	if err != nil {
		return nil, fmt.Errorf("fsmodel: fitting FS series: %w", err)
	}
	p := &Prediction{
		Fit:                 fit,
		SampledRuns:         res.ChunkRunsEvaluated,
		TotalRuns:           res.ChunkRunsTotal,
		SampledFS:           res.FSCases,
		IterationsEvaluated: res.Iterations,
		Sample:              res.PerRun,
	}
	p.PredictedFS = fit.PredictCount(float64(p.TotalRuns))
	return p, nil
}
