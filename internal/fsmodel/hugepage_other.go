//go:build !linux

package fsmodel

import "unsafe"

// adviseHuge is a no-op off Linux; see hugepage_linux.go.
func adviseHuge(p unsafe.Pointer, size uintptr) {}
