package fsmodel

import (
	"math/bits"
	"unsafe"

	"repro/internal/accessplan"
	"repro/internal/cache"
)

// This file is the compiled evaluation pipeline: the block-structured
// executor over internal/accessplan plans, the transposed lazy-stamp LRU
// state that replaces the pointer-chasing FlatLRU on the hot path, and
// the quiet-segment run batching that advances the whole team several
// lockstep steps at once when no coherence state can change. Every piece
// is bit-identical to the interpreted path (see compiled_test.go).

// lazyState is the compiled dense backend's per-thread cache state. It
// replaces FlatLRU's doubly linked list (three scattered writes per
// touch) with a timestamp scheme: residency is a per-(thread,line) stamp
// — each thread owns a contiguous span-sized region, so a thread walking
// nearby lines stays within a few hardware cache lines — and LRU order
// is an append-only per-thread ring of (line, stamp) records in one flat
// array. A touch is one stamp write plus one sequential ring append; the
// exact LRU victim is recovered on eviction by popping ring entries
// whose stamp no longer matches (stale re-touches). Rings are compacted
// in place when full, renumbering live stamps 1..m so the clock can
// never overflow int32.
type lazyState struct {
	threads int
	span    int64
	// spanStride is span padded so consecutive threads' regions sit an
	// odd multiple of 64 bytes apart modulo 4096: region strides that are
	// multiples of the page/way size put every thread's stamp for the
	// same line into the same hardware cache set, and ~50 concurrent
	// lockstep streams then thrash an 8-way set. Same story for ringLen.
	spanStride int64
	cap        int32    // per-thread capacity in lines; 0 = never evicts
	stamp      []int32  // stamp[t*spanStride+idx]; 0 = absent
	clock      []int32  // per-thread stamp clock
	live       []int32  // per-thread resident-line count
	ring       []uint64 // recency logs, thread t owns [t*ringLen, (t+1)*ringLen)
	ringLen    int64
	head       []int64 // absolute ring cursors within thread t's region
	tail       []int64
}

// The modified bit rides in the stamp word itself (one array access per
// touch instead of two). Staleness comparisons mask it off, so downgrade
// — which flips the bit in place without a ring append — cannot make a
// resident line look stale to eviction.
const lazyMod = int32(1) << 30

func newLazyState(span int64, threads, stackDepth int) *lazyState {
	// spanStride*4 ≡ 64 (mod 4096): spanStride ≡ 16 (mod 1024).
	spanStride := span + ((16-span)%1024+1024)%1024
	s := &lazyState{
		threads:    threads,
		span:       span,
		spanStride: spanStride,
		stamp:      make([]int32, spanStride*int64(threads)),
	}
	adviseHuge(unsafe.Pointer(&s.stamp[0]), uintptr(len(s.stamp))*4)
	// Mirror FlatLRU: a non-positive or span-covering capacity never
	// evicts, so no recency bookkeeping is needed at all.
	if stackDepth > 0 && int64(stackDepth) < span {
		s.cap = int32(stackDepth)
		s.clock = make([]int32, threads)
		s.live = make([]int32, threads)
		// ringLen*8 ≡ 64 (mod 4096): ringLen ≡ 8 (mod 512).
		rl := int64(4*stackDepth + 64)
		s.ringLen = rl + ((8-rl)%512+512)%512
		s.ring = make([]uint64, s.ringLen*int64(threads))
		adviseHuge(unsafe.Pointer(&s.ring[0]), uintptr(len(s.ring))*8)
		s.head = make([]int64, threads)
		s.tail = make([]int64, threads)
		for t := 0; t < threads; t++ {
			s.head[t] = int64(t) * s.ringLen
			s.tail[t] = int64(t) * s.ringLen
		}
	}
	return s
}

// compact drops stale ring entries and renumbers live stamps 1..m in
// recency order, resetting the clock. Live entries number at most cap,
// far below the ring length, so the ring is never full after compaction.
func (s *lazyState) compact(t int) {
	base := int64(t) * s.ringLen
	sbase := int64(t) * s.spanStride
	m := int32(0)
	for i := s.head[t]; i < s.tail[t]; i++ {
		e := s.ring[i]
		idx := int64(e >> 32)
		p := sbase + idx
		if s.stamp[p]&^lazyMod == int32(uint32(e))&^lazyMod && s.stamp[p] != 0 {
			m++
			c := m | (s.stamp[p] & lazyMod)
			s.stamp[p] = c
			s.ring[base+int64(m)-1] = uint64(idx)<<32 | uint64(uint32(c))
		}
	}
	s.head[t] = base
	s.tail[t] = base + int64(m)
	s.clock[t] = m
}

// touch is the interpreted-twin entry point used by the slow paths
// (negative-address windows never occur, but accessMap parity tests do);
// the hot loop in accessLazy inlines this logic.
func (s *lazyState) touch(t int, idx int64, write bool) cache.TouchResult {
	var res cache.TouchResult
	p := int64(t)*s.spanStride + idx
	sp := s.stamp[p]
	var mod int32
	if write {
		mod = lazyMod
	}
	if s.cap == 0 {
		if sp != 0 {
			res.Hit = true
			res.WasModified = sp&lazyMod != 0
			s.stamp[p] = sp | mod
			return res
		}
		s.stamp[p] = 1 | mod
		return res
	}
	if sp != 0 {
		res.Hit = true
		res.WasModified = sp&lazyMod != 0
		s.bump(t, idx, p, sp&lazyMod|mod)
		return res
	}
	if s.live[t] >= s.cap {
		v := s.evict(t)
		vp := int64(t)*s.spanStride + v
		res.Evicted = true
		res.EvictedLine = v
		res.EvictedDirty = s.stamp[vp]&lazyMod != 0
		s.stamp[vp] = 0
		s.live[t]--
	}
	s.live[t]++
	s.bump(t, idx, p, mod)
	return res
}

// bump stamps idx as thread t's most recently used line, carrying mod.
func (s *lazyState) bump(t int, idx, p int64, mod int32) {
	if s.tail[t] == int64(t+1)*s.ringLen {
		s.compact(t)
	}
	s.clock[t]++
	c := s.clock[t] | mod
	s.stamp[p] = c
	s.ring[s.tail[t]] = uint64(idx)<<32 | uint64(uint32(c))
	s.tail[t]++
}

// evict pops the true LRU resident line of thread t off the ring.
func (s *lazyState) evict(t int) int64 {
	sbase := int64(t) * s.spanStride
	h := s.head[t]
	for {
		e := s.ring[h]
		h++
		idx := int64(e >> 32)
		sp := s.stamp[sbase+idx]
		if sp != 0 && sp&^lazyMod == int32(uint32(e))&^lazyMod {
			s.head[t] = h
			return idx
		}
	}
}

func (s *lazyState) downgrade(t int, idx int64) {
	p := int64(t)*s.spanStride + idx
	if s.stamp[p] != 0 {
		s.stamp[p] &^= lazyMod
	}
}

func (s *lazyState) invalidate(t int, idx int64) {
	p := int64(t)*s.spanStride + idx
	if s.stamp[p] == 0 {
		return
	}
	s.stamp[p] = 0
	if s.cap != 0 {
		s.live[t]--
	}
}

// accessLazy is accessDense's twin over the lazy state; same directory,
// same counting, same eviction bookkeeping, same silent-mutation count.
// The lazyState touch/bump/evict logic is hand-inlined: this is the hot
// path of the whole model, and the call plus TouchResult traffic costs
// more than the state update itself.
func (r *run) accessLazy(t int, line int64, write bool, refIdx int) bool {
	idx := line - r.base
	if idx < 0 || idx >= int64(len(r.ddir)) {
		return false
	}
	res := r.res
	e := &r.ddir[idx]
	ownerBefore := e.owner
	tBit := uint64(1) << uint(t)
	lz := r.lz

	if e.owner >= 0 && int(e.owner) != t {
		res.FSCases++
		if refIdx >= 0 && refIdx < len(res.ByRef) {
			res.ByRef[refIdx].FSCases++
		}
		if r.trackHot {
			res.hotLines[line]++
		}
		lz.downgrade(int(e.owner), idx)
		e.owner = -1
	}

	if r.mode == CountMESI && write {
		others := e.holders &^ tBit
		for others != 0 {
			u := bits.TrailingZeros64(others)
			others &^= 1 << uint(u)
			lz.invalidate(u, idx)
			e.holders &^= 1 << uint(u)
			res.Invalidations++
		}
	}

	p := int64(t)*lz.spanStride + idx
	sp := lz.stamp[p]
	var mod int32
	if write {
		mod = lazyMod
	}
	hit := sp != 0
	wasMod := sp&lazyMod != 0
	if lz.cap == 0 {
		if hit {
			lz.stamp[p] = sp | mod
		} else {
			lz.stamp[p] = 1 | mod
			res.ColdMisses++
			e.holders |= tBit
		}
	} else {
		if !hit {
			res.ColdMisses++
			e.holders |= tBit
			if lz.live[t] >= lz.cap {
				// Pop ring entries until a live, unsuperseded record
				// surfaces: the true LRU resident line.
				sbase := int64(t) * lz.spanStride
				h := lz.head[t]
				var v int64
				for {
					rec := lz.ring[h]
					h++
					v = int64(rec >> 32)
					vsp := lz.stamp[sbase+v]
					if vsp != 0 && vsp&^lazyMod == int32(uint32(rec))&^lazyMod {
						break
					}
				}
				lz.head[t] = h
				lz.stamp[sbase+v] = 0
				lz.live[t]--
				res.CapacityEvictions++
				ev := &r.ddir[v]
				ev.holders &^= tBit
				if int(ev.owner) == t || ev.holders == 0 {
					ev.owner = -1
				}
			}
			lz.live[t]++
		} else {
			mod |= sp & lazyMod
		}
		if lz.tail[t] == int64(t+1)*lz.ringLen {
			// compact renumbers live stamps but preserves each line's mod
			// bit, so mod (derived from the pre-compact stamp) stays right.
			lz.compact(t)
		}
		lz.clock[t]++
		c := lz.clock[t] | mod
		lz.stamp[p] = c
		lz.ring[lz.tail[t]] = uint64(idx)<<32 | uint64(uint32(c))
		lz.tail[t]++
	}
	if write {
		if ownerBefore != int8(t) || (hit && !wasMod) {
			r.mut++
		}
		e.owner = int8(t)
	}
	return true
}

// cthread is one thread's position in its block stream.
type cthread struct {
	cur       *accessplan.Cursor
	addr      []int64
	blockLeft int64
	chunkLeft int64 // parallel-innermost plans only
	newKey    bool  // the current block's first step starts a new chunk-run key
	atStart   bool  // the next step is the current block's first
	done      bool
}

// lineWindow returns the cache-line window [first,last] of a size-byte
// access at a. Shifts require a floor division, which matches the
// cache.LinesTouched truncating division only for non-negative
// addresses; negative ones take the slow path.
func lineWindow(a, size, lineSize int64, shift uint) (first, last int64) {
	if a >= 0 {
		return a >> shift, (a + size - 1) >> shift
	}
	return cache.LinesTouched(a, int32(size), lineSize)
}

// stepRefs models one lockstep step of thread t at the given reference
// addresses: consecutive references resolving to the same single cache
// line are coalesced into one state operation (write = OR of the group,
// ϕ attribution to the group's first reference — identical counting, see
// the equivalence proof in DESIGN.md §13), while the logical access
// count still credits every (reference, line) pair against the budget.
func (r *run) stepRefs(t int, addr []int64) error {
	ap := r.ap
	refs := ap.Refs
	nr := len(refs)
	lineSize := r.lineSize
	shift := ap.LineShift
	dense := r.dense
	for i := 0; i < nr; {
		first, last := lineWindow(addr[i], int64(refs[i].Size), lineSize, shift)
		if first == last {
			write := refs[i].Write
			g := int64(1)
			j := i + 1
			for j < nr {
				f2, l2 := lineWindow(addr[j], int64(refs[j].Size), lineSize, shift)
				if f2 != first || l2 != first {
					break
				}
				write = write || refs[j].Write
				g++
				j++
			}
			if err := r.addAccesses(g); err != nil {
				return err
			}
			if dense {
				if !r.accessLazy(t, first, write, i) {
					return errDenseRange
				}
			} else {
				r.accessMap(t, first, write, i)
			}
			i = j
			continue
		}
		for line := first; line <= last; line++ {
			if err := r.addAccesses(1); err != nil {
				return err
			}
			if dense {
				if !r.accessLazy(t, line, refs[i].Write, i) {
					return errDenseRange
				}
			} else {
				r.accessMap(t, line, refs[i].Write, i)
			}
		}
		i++
	}
	return nil
}

// sameLineSteps counts how many consecutive steps (including the current
// one) keep a size-byte access at a, advancing by stride per step, on
// exactly the same cache-line window.
func sameLineSteps(a, size, stride, lineSize int64, shift uint) int64 {
	if stride == 0 {
		return int64(1) << 62
	}
	if a < 0 {
		return 1
	}
	first := a >> shift
	last := (a + size - 1) >> shift
	if stride > 0 {
		k1 := (((first + 1) << shift) - 1 - a) / stride
		k2 := (((last + 1) << shift) - 1 - (a + size - 1)) / stride
		if k2 < k1 {
			k1 = k2
		}
		return k1 + 1
	}
	k1 := (a - (first << shift)) / (-stride)
	k2 := (a + size - 1 - (last << shift)) / (-stride)
	if k2 < k1 {
		k1 = k2
	}
	return k1 + 1
}

// batchWindow computes, before a step is processed, the largest L such
// that every active thread touches exactly the same cache-line windows
// for the next L steps (bounded to stay inside each thread's current
// block and, on parallel-innermost plans, its current owned chunk, so a
// batch can never cross a chunk-run boundary). It also fills batchAcc
// with each thread's logical accesses per step. Returns 0 when any
// thread is between blocks.
func (r *run) batchWindow(ts []cthread, batchAcc []int64) int64 {
	ap := r.ap
	refs := ap.Refs
	strides := ap.Strides()
	lineSize := r.lineSize
	shift := ap.LineShift
	parInner := ap.ParInnermost()
	L := int64(1) << 62
	for t := range ts {
		st := &ts[t]
		if st.done {
			batchAcc[t] = 0
			continue
		}
		if st.blockLeft == 0 {
			return 0
		}
		if st.blockLeft < L {
			L = st.blockLeft
		}
		if parInner && st.chunkLeft < L {
			L = st.chunkLeft
		}
		var acc int64
		for i := range refs {
			sz := int64(refs[i].Size)
			k := sameLineSteps(st.addr[i], sz, strides[i], lineSize, shift)
			if k < L {
				L = k
			}
			first, last := lineWindow(st.addr[i], sz, lineSize, shift)
			acc += last - first + 1
		}
		batchAcc[t] = acc
		if L <= 1 {
			return L
		}
	}
	return L
}

// executeCompiled is the compiled twin of execute: the same lockstep
// team enumeration, driven by precomputed access-run blocks instead of
// per-iteration affine evaluation, with same-line coalescing and
// quiet-segment batching layered on top. Counters, attribution, budget
// aborts and chunk-run bookkeeping are bit-identical to execute's.
func (r *run) executeCompiled() (*Result, error) {
	res := r.res
	ap := r.ap
	numThreads := r.plan.NumThreads
	parInner := ap.ParInnermost()
	strides := ap.Strides()
	skips := ap.Skips()
	chunkLen := ap.ChunkLen()
	nr := ap.NumRefs()

	ts := make([]cthread, numThreads)
	for t := range ts {
		ts[t] = cthread{cur: ap.Cursor(t), addr: make([]int64, nr)}
	}
	active := numThreads

	ex := newExtrapolator(r)
	trackBoundaries := r.trackRuns || ex != nil
	var t0Trips int64

	if r.budgeted {
		if err := r.budget.Check(0, r.estimateStateBytes()); err != nil {
			return nil, err
		}
	}

	batchable := ap.Batchable()
	batchAcc := make([]int64, numThreads)
	quietStreak := 0

	for active > 0 {
		res.Steps++
		var batchL int64
		if batchable && quietStreak >= 2 {
			batchL = r.batchWindow(ts, batchAcc)
		}
		evBefore := res.FSCases + res.Invalidations + res.ColdMisses + res.CapacityEvictions + r.mut
		for t := 0; t < numThreads; t++ {
			st := &ts[t]
			if st.done {
				continue
			}
			if st.blockLeft == 0 {
				steps, newKey, ok := st.cur.NextBlock(st.addr)
				if !ok {
					st.done = true
					active--
					continue
				}
				st.blockLeft = steps
				st.newKey = newKey
				st.chunkLeft = chunkLen
				st.atStart = true
			}
			res.Iterations++
			if t == 0 && trackBoundaries && (parInner || (st.atStart && st.newKey)) {
				t0Trips++
				if r.trackRuns {
					for completed := (t0Trips - 1) / r.plan.Chunk; res.ChunkRunsEvaluated < completed; {
						res.ChunkRunsEvaluated++
						if r.recordPerRun {
							res.PerRun = append(res.PerRun, res.FSCases)
						}
						if r.maxRuns > 0 && res.ChunkRunsEvaluated >= r.maxRuns {
							res.Truncated = true
							return res, nil
						}
					}
				}
				if ex != nil && (t0Trips-1)%r.plan.Chunk == 0 {
					closed, err := ex.boundary(r)
					if err != nil {
						return nil, err
					}
					if closed {
						return res, nil
					}
				}
			}
			st.atStart = false
			if err := r.stepRefs(t, st.addr); err != nil {
				return nil, err
			}
			st.blockLeft--
			if parInner {
				st.chunkLeft--
				if st.chunkLeft == 0 && st.blockLeft > 0 {
					st.chunkLeft = chunkLen
					for i := range st.addr {
						st.addr[i] += skips[i]
					}
				} else {
					for i := range st.addr {
						st.addr[i] += strides[i]
					}
				}
			} else {
				for i := range st.addr {
					st.addr[i] += strides[i]
				}
			}
		}
		if res.FSCases+res.Invalidations+res.ColdMisses+res.CapacityEvictions+r.mut == evBefore {
			quietStreak++
			if batchL > 1 {
				if err := r.replayQuiet(ts, batchL-1, batchAcc, &t0Trips, trackBoundaries); err != nil {
					return nil, err
				}
			}
		} else {
			quietStreak = 0
		}
	}
	if r.recordPerRun && r.plan.Chunk > 0 {
		finalRuns := (t0Trips + r.plan.Chunk - 1) / r.plan.Chunk
		for res.ChunkRunsEvaluated < finalRuns {
			res.ChunkRunsEvaluated++
			res.PerRun = append(res.PerRun, res.FSCases)
		}
	}
	return res, nil
}

// replayQuiet advances the whole team k further lockstep steps after a
// quiet probe step: every thread re-touches exactly the cache lines it
// touched in the probe with the same write sets, and the probe moved no
// counter, so each replayed step leaves the modeled state equivalent
// (resident lines stay resident — no evictions are possible — per-thread
// LRU order is restored by the identical touch sequence, and directory
// owners/holders are already absorbing). Only the counters and cursor
// positions advance; budget boundaries still fire at their exact values
// through addAccesses.
func (r *run) replayQuiet(ts []cthread, k int64, batchAcc []int64, t0Trips *int64, trackBoundaries bool) error {
	res := r.res
	ap := r.ap
	parInner := ap.ParInnermost()
	strides := ap.Strides()
	skips := ap.Skips()
	chunkLen := ap.ChunkLen()
	res.Steps += k
	var total int64
	for t := range ts {
		st := &ts[t]
		if st.done {
			continue
		}
		res.Iterations += k
		total += batchAcc[t] * k
		st.blockLeft -= k
		if parInner {
			st.chunkLeft -= k
			if st.chunkLeft == 0 && st.blockLeft > 0 {
				st.chunkLeft = chunkLen
				for i := range st.addr {
					st.addr[i] += strides[i]*(k-1) + skips[i]
				}
			} else {
				for i := range st.addr {
					st.addr[i] += strides[i] * k
				}
			}
		} else {
			for i := range st.addr {
				st.addr[i] += strides[i] * k
			}
		}
	}
	// The batch never crosses a chunk-run boundary (it is bounded by
	// thread 0's remaining chunk), so trip bookkeeping is a pure count.
	if trackBoundaries && parInner && !ts[0].done {
		*t0Trips += k
	}
	return r.addAccesses(total)
}
