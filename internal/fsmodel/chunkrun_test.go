package fsmodel

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
)

// TestPerRunMonotoneMultiInstance checks PerRun is a cumulative (monotone
// nondecreasing) series covering every chunk run of a multi-instance nest
// (heat: the sequential row loop re-runs the parallel column loop per row,
// so ParLevel > 0), on both backends.
func TestPerRunMonotoneMultiInstance(t *testing.T) {
	kern, err := kernels.Heat(10, 512)
	if err != nil {
		t.Fatal(err)
	}
	if kern.Nest.ParLevel <= 0 {
		t.Fatalf("heat ParLevel = %d, want > 0", kern.Nest.ParLevel)
	}
	for _, backend := range []StateBackend{BackendDense, BackendMap} {
		res, err := Analyze(kern.Nest, Options{
			Machine: machine.Paper48(), NumThreads: 4, Chunk: 1,
			RecordPerRun: true, Backend: backend,
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.Truncated {
			t.Fatalf("%v: untruncated run reports Truncated", backend)
		}
		if res.ChunkRunsEvaluated != res.ChunkRunsTotal {
			t.Fatalf("%v: evaluated %d of %d chunk runs", backend, res.ChunkRunsEvaluated, res.ChunkRunsTotal)
		}
		if int64(len(res.PerRun)) != res.ChunkRunsEvaluated {
			t.Fatalf("%v: len(PerRun) = %d, evaluated = %d", backend, len(res.PerRun), res.ChunkRunsEvaluated)
		}
		for i := 1; i < len(res.PerRun); i++ {
			if res.PerRun[i] < res.PerRun[i-1] {
				t.Fatalf("%v: PerRun not monotone at %d: %v", backend, i, res.PerRun)
			}
		}
		if last := res.PerRun[len(res.PerRun)-1]; last != res.FSCases {
			t.Fatalf("%v: PerRun final %d != FSCases %d", backend, last, res.FSCases)
		}
	}
}

// TestMaxChunkRunsTruncation checks the Truncated/ChunkRunsEvaluated
// contract on a multi-instance nest: a truncated run evaluates exactly
// MaxChunkRuns runs, its PerRun series is a prefix of the full series, and
// MaxChunkRuns >= total runs to completion untruncated.
func TestMaxChunkRunsTruncation(t *testing.T) {
	kern, err := kernels.Heat(10, 512)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1, RecordPerRun: true}
	full, err := Analyze(kern.Nest, base)
	if err != nil {
		t.Fatal(err)
	}
	if full.ChunkRunsTotal < 8 {
		t.Fatalf("test wants >= 8 chunk runs, total = %d", full.ChunkRunsTotal)
	}

	for _, backend := range []StateBackend{BackendDense, BackendMap} {
		// Truncation strictly inside the run, crossing instance borders.
		for _, maxRuns := range []int64{1, 3, full.ChunkRunsTotal / 2, full.ChunkRunsTotal - 1} {
			opts := base
			opts.Backend = backend
			opts.MaxChunkRuns = maxRuns
			res, err := Analyze(kern.Nest, opts)
			if err != nil {
				t.Fatalf("%v maxRuns=%d: %v", backend, maxRuns, err)
			}
			if !res.Truncated {
				t.Fatalf("%v maxRuns=%d: not truncated", backend, maxRuns)
			}
			if res.ChunkRunsEvaluated != maxRuns {
				t.Fatalf("%v maxRuns=%d: evaluated %d", backend, maxRuns, res.ChunkRunsEvaluated)
			}
			if int64(len(res.PerRun)) != maxRuns {
				t.Fatalf("%v maxRuns=%d: len(PerRun) = %d", backend, maxRuns, len(res.PerRun))
			}
			for i, v := range res.PerRun {
				if v != full.PerRun[i] {
					t.Fatalf("%v maxRuns=%d: PerRun[%d] = %d, full has %d", backend, maxRuns, i, v, full.PerRun[i])
				}
			}
		}
		// MaxChunkRuns at or above the total must not truncate.
		for _, maxRuns := range []int64{full.ChunkRunsTotal, full.ChunkRunsTotal + 5} {
			opts := base
			opts.Backend = backend
			opts.MaxChunkRuns = maxRuns
			res, err := Analyze(kern.Nest, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatalf("%v maxRuns=%d: truncated with total %d", backend, maxRuns, full.ChunkRunsTotal)
			}
			if res.ChunkRunsEvaluated != full.ChunkRunsTotal || res.FSCases != full.FSCases {
				t.Fatalf("%v maxRuns=%d: evaluated %d FS %d, want %d/%d",
					backend, maxRuns, res.ChunkRunsEvaluated, res.FSCases, full.ChunkRunsTotal, full.FSCases)
			}
		}
	}
}

// TestPlainRunSkipsChunkTracking checks that without RecordPerRun or
// MaxChunkRuns the chunk-run machinery stays fully off: no runs counted,
// no snapshots, identical FS counts — this is the hoisted-branch contract.
func TestPlainRunSkipsChunkTracking(t *testing.T) {
	kern, err := kernels.Heat(10, 512)
	if err != nil {
		t.Fatal(err)
	}
	tracked, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1, RecordPerRun: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ChunkRunsEvaluated != 0 || plain.PerRun != nil || plain.Truncated {
		t.Fatalf("plain run tracked chunk runs: %+v", plain)
	}
	if plain.FSCases != tracked.FSCases || plain.Accesses != tracked.Accesses {
		t.Fatalf("plain/tracked disagree: %d/%d vs %d/%d",
			plain.FSCases, plain.Accesses, tracked.FSCases, tracked.Accesses)
	}
}
