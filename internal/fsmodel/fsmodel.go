// Package fsmodel implements the paper's contribution: the compile-time
// false-sharing cost model for OpenMP parallel loops (Section III).
//
// Given a lowered loop nest, the model
//
//  1. takes the array references of the innermost loop (collected during
//     lowering),
//  2. generates, per lockstep iteration, a cache-line ownership list for
//     each thread under static round-robin chunk scheduling,
//  3. maintains a per-thread cache state — a fully-associative LRU stack
//     (stack distance analysis) — and
//  4. detects false sharing with the paper's 1-to-All comparison: when
//     thread j touches cache line cl, one FS case is counted for every
//     other thread whose cache state holds cl in Modified state (the ϕ
//     function of Eq. 3, masked to exclude j's own state per Eq. 4).
//
// Counting modes: CountPaperPhi reproduces the paper's ϕ exactly, with a
// Modified copy downgraded once it has been counted against (so each
// coherence event is counted once, matching "an FS case" = one
// unnecessary coherence miss). CountMESI additionally invalidates remote
// copies on writes, the behaviour of a real write-invalidate protocol;
// the difference between the two is an ablation the benchmarks measure.
package fsmodel

import (
	"fmt"
	"math/bits"
	"sort"
	"unsafe"

	"repro/internal/accessplan"
	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// CountingMode selects how FS cases are detected and how remote copies are
// treated after detection.
type CountingMode int

const (
	// CountPaperPhi is the paper's ϕ/mask counting (Equations 3–4): an FS
	// case whenever the accessed line is held Modified by another thread;
	// the remote copy is downgraded to clean after being counted.
	CountPaperPhi CountingMode = iota
	// CountMESI is write-invalidate-faithful: reads of a remotely
	// Modified line count and downgrade (as above); writes additionally
	// invalidate every remote copy of the line.
	CountMESI
)

// String names the mode.
func (m CountingMode) String() string {
	switch m {
	case CountPaperPhi:
		return "paper-phi"
	case CountMESI:
		return "mesi"
	}
	return fmt.Sprintf("CountingMode(%d)", int(m))
}

// StateBackend selects the data structures backing a run's coherence
// directory and per-thread cache states.
type StateBackend int

const (
	// BackendAuto (the default) uses the dense array-backed state when the
	// nest's reachable cache-line space is compact enough to index
	// directly, and falls back to the general map-backed state otherwise
	// (sparse or unbounded address spaces, the set-associative ablation,
	// or a dense window that would exceed the memory budget). Both
	// backends compute bit-identical results.
	BackendAuto StateBackend = iota
	// BackendDense forces the dense path; Analyze errors if the nest's
	// address space cannot be remapped to a dense window.
	BackendDense
	// BackendMap forces the general map path.
	BackendMap
)

// String names the backend.
func (b StateBackend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendDense:
		return "dense"
	case BackendMap:
		return "map"
	}
	return fmt.Sprintf("StateBackend(%d)", int(b))
}

// EvalMode selects how the lockstep enumeration is driven.
type EvalMode int

const (
	// EvalAuto (the default) compiles the nest into an access-run plan
	// (internal/accessplan) and runs the block-structured executor, falling
	// back to per-iteration interpretation when the nest cannot be
	// compiled. Both evaluators produce bit-identical results.
	EvalAuto EvalMode = iota
	// EvalCompiled forces the compiled executor; Analyze errors if the
	// nest cannot be compiled (used by CI to detect silent fallbacks).
	EvalCompiled
	// EvalInterpreted forces the original per-iteration interpreter.
	EvalInterpreted
)

// String names the mode.
func (e EvalMode) String() string {
	switch e {
	case EvalAuto:
		return "auto"
	case EvalCompiled:
		return "compiled"
	case EvalInterpreted:
		return "interpreted"
	}
	return fmt.Sprintf("EvalMode(%d)", int(e))
}

// EvalModeFromString parses the CLI/service spelling of an EvalMode.
func EvalModeFromString(s string) (EvalMode, error) {
	switch s {
	case "", "auto":
		return EvalAuto, nil
	case "compiled":
		return EvalCompiled, nil
	case "interpreted":
		return EvalInterpreted, nil
	}
	return EvalAuto, fmt.Errorf("fsmodel: unknown eval mode %q (want auto, compiled or interpreted)", s)
}

// Options configures an analysis run.
type Options struct {
	// Machine supplies line size and private-cache capacity. Defaults to
	// machine.Paper48().
	Machine *machine.Desc
	// NumThreads is the thread count when the pragma does not fix one.
	NumThreads int
	// Chunk overrides the schedule chunk when the pragma does not fix one
	// (0 keeps the OpenMP static default of one block per thread).
	Chunk int64
	// StackDepth is the per-thread cache-state capacity in lines.
	// 0 uses the machine's largest private cache; negative means
	// unbounded (infinite stack).
	StackDepth int
	// Associativity > 0 switches the per-thread cache state from the
	// paper's fully-associative stack to a set-associative array with
	// that many ways (an ablation; the paper argues fully-associative is
	// a valid approximation for highly associative caches).
	Associativity int64
	// Counting selects the FS detection semantics.
	Counting CountingMode
	// MaxChunkRuns, when positive, stops the analysis after that many
	// chunk runs of the thread team (the prediction model's sampling).
	MaxChunkRuns int64
	// RecordPerRun records the cumulative FS count after every chunk run
	// (needed for Fig. 6 and the prediction model). Enabled implicitly
	// when MaxChunkRuns is set.
	RecordPerRun bool
	// TrackHotLines additionally attributes FS cases to individual cache
	// lines (Result.HotLines), at a small per-FS-event cost.
	TrackHotLines bool
	// Backend selects the per-run state implementation (see StateBackend).
	Backend StateBackend
	// Eval selects the evaluation pipeline (see EvalMode).
	Eval EvalMode
	// Extrapolate enables steady-state chunk-run extrapolation on the
	// compiled path: the model simulates chunk runs only until the
	// per-run FS/miss deltas become exactly periodic, then closes the
	// total in O(1). Refused (with a silent fall back to full
	// simulation) whenever the nest's structure cannot guarantee
	// periodicity; Result.Extrapolated reports what happened.
	Extrapolate bool
	// Budget bounds the run: modeled accesses (MaxSteps), modeled state
	// bytes (MaxStateBytes) and a wall-clock deadline. The zero value is
	// unlimited and adds no hot-loop work beyond one predictable branch
	// per access; violations abort the run with a *guard.BudgetError
	// (matching guard.ErrBudgetExceeded). Checks are amortized every
	// budgetCheckEvery accesses, so the step budget may overrun by at
	// most that interval — but the trigger is count-based, so the same
	// input always stops at the same access. A budget never changes the
	// result of a run it does not abort.
	Budget guard.Budget
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = machine.Paper48()
	}
	if o.StackDepth == 0 {
		o.StackDepth = o.Machine.PrivateCacheLines()
	}
	if o.StackDepth < 0 {
		o.StackDepth = 0 // unbounded for cache.NewFullyAssoc
	}
	if o.MaxChunkRuns > 0 {
		o.RecordPerRun = true
	}
	return o
}

// Result is the outcome of one model run.
type Result struct {
	// FSCases is the total number of false sharing cases detected
	// (the paper's N_fs / N_nfs depending on the chunk size analyzed).
	FSCases int64
	// Invalidations counts remote-copy invalidations (CountMESI only).
	Invalidations int64

	// Iterations is the total number of innermost-loop iterations
	// executed across all threads; Steps is the lockstep horizon (the
	// All_num_of_iters / num_of_threads of the paper).
	Iterations int64
	Steps      int64
	Accesses   int64

	// ColdMisses and CapacityEvictions summarize per-thread cache-state
	// behaviour (inputs to diagnostics, not to FS counting).
	ColdMisses        int64
	CapacityEvictions int64

	// ChunkRunsEvaluated is how many full team cycles were processed;
	// ChunkRunsTotal is how many the complete loop contains.
	ChunkRunsEvaluated int64
	ChunkRunsTotal     int64
	// PerRun[i] is the cumulative FS count after chunk run i+1 (present
	// when Options.RecordPerRun).
	PerRun []int64
	// Truncated reports that MaxChunkRuns stopped the run early.
	Truncated bool

	Plan sched.Plan
	Mode CountingMode
	// Backend reports which state implementation the run actually used
	// (BackendAuto resolves to dense or map before the run starts).
	Backend StateBackend
	// Eval reports which evaluator actually ran (EvalAuto resolves to
	// compiled or interpreted before the run starts).
	Eval EvalMode
	// Extrapolated reports that the steady-state closure produced the
	// totals; SimulatedRuns is how many chunk runs were actually
	// simulated before the periodic tail was closed in O(1), and
	// ExtrapolationPeriod is the detected period in chunk runs. All three
	// are zero/false on fully simulated runs.
	Extrapolated        bool
	SimulatedRuns       int64
	ExtrapolationPeriod int64
	// SkippedRefs lists non-affine references excluded from the model.
	SkippedRefs []string
	// ByRef attributes FS cases to the source reference whose access
	// detected them, index-aligned with the nest's analyzable refs. This
	// is the "identify the victim data structure" output the paper calls
	// hard to obtain by hand (Section II-A).
	ByRef []RefAttribution
	// hotLines maps cache line -> FS count (Options.TrackHotLines).
	hotLines map[int64]int64
}

// RefAttribution is the FS share of one source-level reference.
type RefAttribution struct {
	Src     string // source text, e.g. "tid_args[j].sx"
	Symbol  string // array/struct name
	Write   bool
	FSCases int64
}

// LineAttribution is the FS share of one cache line (Options.TrackHotLines).
type LineAttribution struct {
	Line    int64  // cache-line index (address / line size)
	Symbol  string // symbol owning the line, if any
	Offset  int64  // byte offset of the line within the symbol
	FSCases int64
}

// Victims returns the attribution entries with nonzero FS counts, sorted
// by descending count (stable on ties).
func (r *Result) Victims() []RefAttribution {
	out := make([]RefAttribution, 0, len(r.ByRef))
	for _, a := range r.ByRef {
		if a.FSCases > 0 {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FSCases > out[j].FSCases })
	return out
}

// HotLines returns the top-n cache lines by FS count, each resolved to
// the symbol whose storage contains it (Options.TrackHotLines must have
// been set; nil otherwise). This is the per-line view a runtime detector
// like the authors' DARWIN reports, obtained here without executing the
// program.
func (r *Result) HotLines(nest *loopir.Nest, lineSize int64, n int) []LineAttribution {
	if r.hotLines == nil {
		return nil
	}
	out := make([]LineAttribution, 0, len(r.hotLines))
	for line, cases := range r.hotLines {
		la := LineAttribution{Line: line, FSCases: cases}
		addr := line * lineSize
		for _, ref := range nest.Refs {
			if ref.Sym != nil && addr >= ref.Sym.Base && addr < ref.Sym.Base+ref.Sym.Size() {
				la.Symbol = ref.Sym.Name
				la.Offset = addr - ref.Sym.Base
				break
			}
		}
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FSCases != out[j].FSCases {
			return out[i].FSCases > out[j].FSCases
		}
		return out[i].Line < out[j].Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// VictimSymbols aggregates FS counts per symbol, sorted by descending
// count.
func (r *Result) VictimSymbols() []RefAttribution {
	bySym := map[string]int64{}
	order := []string{}
	for _, a := range r.ByRef {
		if a.FSCases == 0 {
			continue
		}
		if _, seen := bySym[a.Symbol]; !seen {
			order = append(order, a.Symbol)
		}
		bySym[a.Symbol] += a.FSCases
	}
	out := make([]RefAttribution, 0, len(order))
	for _, s := range order {
		out = append(out, RefAttribution{Src: s, Symbol: s, FSCases: bySym[s]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FSCases > out[j].FSCases })
	return out
}

// FSPerIteration returns FS cases per innermost iteration.
func (r *Result) FSPerIteration() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.FSCases) / float64(r.Iterations)
}

// threadState abstracts the per-thread cache state so the fully
// associative stack and the set-associative ablation share the hot loop.
type threadState interface {
	Touch(line int64, write bool) cache.TouchResult
	Downgrade(line int64)
	Invalidate(line int64) bool
}

// setAssocState adapts cache.SetAssoc to the threadState interface.
type setAssocState struct{ c *cache.SetAssoc }

func (s setAssocState) Touch(line int64, write bool) cache.TouchResult {
	var res cache.TouchResult
	st := s.c.Access(line)
	if st != cache.Invalid {
		res.Hit = true
		res.WasModified = st == cache.Modified
		if write {
			s.c.SetState(line, cache.Modified)
		}
		return res
	}
	newState := cache.Shared
	if write {
		newState = cache.Modified
	}
	if ev, ok := s.c.Fill(line, newState); ok {
		res.Evicted = true
		res.EvictedLine = ev.Line
		res.EvictedDirty = ev.State == cache.Modified
	}
	return res
}

func (s setAssocState) Downgrade(line int64) {
	if s.c.State(line) == cache.Modified {
		s.c.SetState(line, cache.Shared)
	}
}

func (s setAssocState) Invalidate(line int64) bool {
	return s.c.Invalidate(line) != cache.Invalid
}

// dirEntry tracks, per cache line, which threads hold a copy (bitmask) and
// which single thread holds it Modified (-1 if none). Maintaining the
// directory alongside the per-thread stacks makes the 1-to-All comparison
// O(1) per access instead of O(threads).
type dirEntry struct {
	holders uint64
	owner   int8
}

// Dense-state sizing limits. The dense window spans the contiguous line
// range covered by the nest's symbols; beyond these bounds the map path is
// cheaper than touching that much memory.
const (
	denseMaxLines = int64(1) << 26   // hard cap on the dense window span
	denseMaxBytes = int64(256) << 20 // total dense state budget (all threads)
)

// budgetCheckEvery is the amortization interval of Options.Budget checks
// in the hot loop: one full Check (including the time.Now for deadlines)
// per this many accesses, keeping measured overhead under 2% while
// bounding step-budget overrun to the same interval.
const budgetCheckEvery = 4096

// Approximate per-entry costs of the map-backed state, used only for
// Budget.MaxStateBytes accounting: a directory map entry (bucket share +
// key + dirEntry) and a FullyAssoc stack node (node + map entry).
const (
	dirMapEntryBytes = 64
	stackNodeBytes   = 80
)

// errDenseRange reports an access outside the precomputed dense window
// (possible only when an affine subscript strays outside its symbol's
// declared extent); BackendAuto restarts the run on the map path.
var errDenseRange = fmt.Errorf("fsmodel: access outside the dense line window")

// run bundles one analysis run's precomputed state. Option-dependent
// behaviour (hot-line tracking, per-run recording, counting mode) is
// resolved into flag fields once, so the per-access and per-iteration hot
// paths never consult cold Options.
type run struct {
	res  *Result
	gen  *trace.Generator
	plan sched.Plan
	nest *loopir.Nest

	mode         CountingMode
	trackHot     bool // res.hotLines is non-nil
	trackRuns    bool // chunk-run bookkeeping is needed at all
	recordPerRun bool
	maxRuns      int64
	lineSize     int64
	extrapolate  bool

	// Compiled path: the access-run plan (nil on the interpreted path),
	// the transposed lazy-LRU state (dense backend only), and the
	// silent-mutation counter feeding quiet-segment detection — it counts
	// writes that changed owner or dirtied a clean resident line without
	// firing any other counter, so "no counter moved" really means "the
	// step left the modeled state equivalent".
	ap  *accessplan.Plan
	lz  *lazyState
	mut int64

	// Budget enforcement: budgeted gates the per-access branch entirely;
	// nextCheck is the access count at which the next amortized Check
	// fires; denseBytes is the dense backend's fixed state size.
	budget     guard.Budget
	budgeted   bool
	nextCheck  int64
	denseBytes int64

	// Map path (sparse or unbounded address spaces, set-assoc ablation).
	dir    map[int64]dirEntry
	states []threadState

	// Dense path: the directory is a flat slice indexed by remapped line
	// id (global line − base), and each thread state is an array-backed
	// FlatLRU over the same dense id space. Allocation-free per access.
	dense   bool
	base    int64 // first global line id of the dense window
	ddir    []dirEntry
	dstates []*cache.FlatLRU
}

// denseExtent computes the contiguous cache-line window reachable through
// the nest's analyzable references: every affine reference stays inside
// its symbol's [Base, Base+Size) extent, so the union of symbol extents
// bounds the run's address space. ok is false when the nest has no
// analyzable references.
func denseExtent(nest *loopir.Nest, lineSize int64) (firstLine, span int64, ok bool) {
	var lo, hi int64
	for _, r := range nest.AnalyzableRefs() {
		if r.Sym == nil || r.Sym.Size() <= 0 {
			return 0, 0, false
		}
		base, end := r.Sym.Base, r.Sym.Base+r.Sym.Size()
		if !ok {
			lo, hi, ok = base, end, true
			continue
		}
		if base < lo {
			lo = base
		}
		if end > hi {
			hi = end
		}
	}
	if !ok {
		return 0, 0, false
	}
	firstLine = lo / lineSize
	span = (hi-1)/lineSize - firstLine + 1
	return firstLine, span, true
}

// denseStateBytes estimates the dense backend's allocation for a window
// of span lines: dirEntry slice + per-thread line→slot tables +
// per-thread slot arrays (line, prev, next, modified).
func denseStateBytes(span int64, threads int, stackDepth int) int64 {
	cap := span
	if stackDepth > 0 && int64(stackDepth) < span {
		cap = int64(stackDepth)
	}
	return span*16 + int64(threads)*(span*4+cap*14)
}

// denseFits reports whether a dense window of span lines stays inside the
// memory budget for the given team size and per-thread capacity.
func denseFits(span int64, threads int, stackDepth int) bool {
	if span <= 0 || span > denseMaxLines {
		return false
	}
	return denseStateBytes(span, threads, stackDepth) <= denseMaxBytes
}

// newRun builds the per-run state for one Analyze call. dense selects the
// state backend; the caller has already validated it is representable.
// ap, when non-nil, selects the compiled executor (and, on the dense
// backend, the transposed lazy-LRU state it drives).
func newRun(nest *loopir.Nest, opts Options, plan sched.Plan, gen *trace.Generator, ap *accessplan.Plan, dense bool, base, span int64) (*run, error) {
	res := &Result{Plan: plan, Mode: opts.Counting, SkippedRefs: gen.Skipped}
	res.ChunkRunsTotal = totalChunkRuns(nest, plan)
	if opts.TrackHotLines {
		res.hotLines = make(map[int64]int64)
	}
	for _, r := range nest.AnalyzableRefs() {
		res.ByRef = append(res.ByRef, RefAttribution{Src: r.Src, Symbol: r.Sym.Name, Write: r.Write})
	}

	r := &run{
		res:          res,
		gen:          gen,
		plan:         plan,
		nest:         nest,
		mode:         opts.Counting,
		trackHot:     opts.TrackHotLines,
		trackRuns:    opts.RecordPerRun || opts.MaxChunkRuns > 0,
		recordPerRun: opts.RecordPerRun,
		maxRuns:      opts.MaxChunkRuns,
		lineSize:     opts.Machine.LineSize,
		extrapolate:  opts.Extrapolate,
		ap:           ap,
		budget:       opts.Budget,
		budgeted:     !opts.Budget.Zero(),
		nextCheck:    budgetCheckEvery,
	}
	if ap != nil {
		res.Eval = EvalCompiled
	} else {
		res.Eval = EvalInterpreted
	}

	if dense {
		r.denseBytes = denseStateBytes(span, plan.NumThreads, opts.StackDepth)
		res.Backend = BackendDense
		r.dense = true
		r.base = base
		r.ddir = make([]dirEntry, span)
		adviseHuge(unsafe.Pointer(&r.ddir[0]), uintptr(span)*uintptr(unsafe.Sizeof(dirEntry{})))
		for i := range r.ddir {
			r.ddir[i].owner = -1
		}
		if ap != nil {
			r.lz = newLazyState(span, plan.NumThreads, opts.StackDepth)
			return r, nil
		}
		r.dstates = make([]*cache.FlatLRU, plan.NumThreads)
		for t := range r.dstates {
			r.dstates[t] = cache.NewFlatLRU(int(span), opts.StackDepth)
		}
		return r, nil
	}

	res.Backend = BackendMap
	r.dir = make(map[int64]dirEntry)
	r.states = make([]threadState, plan.NumThreads)
	for t := range r.states {
		if opts.Associativity > 0 {
			geom := cache.Geometry{
				SizeBytes: int64(opts.StackDepth) * opts.Machine.LineSize,
				LineSize:  opts.Machine.LineSize,
				Assoc:     opts.Associativity,
			}
			sa, err := cache.NewSetAssoc(geom)
			if err != nil {
				return nil, fmt.Errorf("fsmodel: set-associative ablation: %w", err)
			}
			r.states[t] = setAssocState{c: sa}
		} else {
			r.states[t] = cache.NewFullyAssoc(opts.StackDepth)
		}
	}
	return r, nil
}

// Analyze runs the false-sharing cost model over the nest.
func Analyze(nest *loopir.Nest, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	plan, gen, err := prepare(nest, opts)
	if err != nil {
		return nil, err
	}
	if plan.NumThreads > 64 {
		return nil, fmt.Errorf("fsmodel: at most 64 threads supported, got %d", plan.NumThreads)
	}

	dense := false
	var base, span int64
	if opts.Backend != BackendMap && opts.Associativity == 0 {
		var ok bool
		base, span, ok = denseExtent(nest, opts.Machine.LineSize)
		dense = ok && denseFits(span, plan.NumThreads, opts.StackDepth)
		if dense {
			// A dense window over the caller's state budget is not an
			// error under BackendAuto: the map path grows with touched
			// lines only and may stay inside it (the amortized hot-loop
			// check catches it if not).
			if err := opts.Budget.CheckStateBytes(denseStateBytes(span, plan.NumThreads, opts.StackDepth)); err != nil {
				if opts.Backend == BackendDense {
					return nil, err
				}
				dense = false
			}
		}
	}
	if opts.Backend == BackendDense && !dense {
		return nil, fmt.Errorf("fsmodel: dense backend not representable for this nest (sparse/unbounded address space, set-associative ablation, or window over budget)")
	}

	// Resolve the evaluator: compile the nest into an access-run plan
	// unless interpretation was forced. Compilation failure falls back to
	// the interpreter under EvalAuto and is an error under EvalCompiled.
	var ap *accessplan.Plan
	if opts.Eval != EvalInterpreted {
		p, cerr := accessplan.Compile(nest, plan, opts.Machine.LineSize)
		if cerr != nil {
			if opts.Eval == EvalCompiled {
				return nil, fmt.Errorf("fsmodel: compiled evaluator unavailable: %w", cerr)
			}
		} else {
			ap = p
		}
	}

	r, err := newRun(nest, opts, plan, gen, ap, dense, base, span)
	if err != nil {
		return nil, err
	}
	res, err := r.run()
	if err == errDenseRange && opts.Backend == BackendAuto {
		// A reference strayed outside its symbol's extent: restart on the
		// general map path, which handles arbitrary line ids.
		if r, err = newRun(nest, opts, plan, gen, ap, false, 0, 0); err != nil {
			return nil, err
		}
		res, err = r.run()
	}
	return res, err
}

// run dispatches to the evaluator selected at newRun time.
func (r *run) run() (*Result, error) {
	if r.ap != nil {
		return r.executeCompiled()
	}
	return r.execute()
}

// addAccesses credits n logical accesses against the budget, firing the
// amortized Check at every crossed budgetCheckEvery boundary with the
// exact boundary value — so a run-batched evaluator aborts with the same
// BudgetError.Used as the per-access interpreter, no matter how many
// accesses one batch amortizes.
func (r *run) addAccesses(n int64) error {
	r.res.Accesses += n
	if !r.budgeted {
		return nil
	}
	for r.res.Accesses >= r.nextCheck {
		chk := r.nextCheck
		r.nextCheck = chk + budgetCheckEvery
		if err := r.budget.Check(chk, r.estimateStateBytes()); err != nil {
			return err
		}
	}
	return nil
}

// execute drives the lockstep enumeration of the thread team over the
// per-run state. It is the model's hot loop, shared by both backends.
func (r *run) execute() (*Result, error) {
	res := r.res
	cursors := r.gen.Cursors()
	numThreads := r.plan.NumThreads
	lineSize := r.lineSize
	dense := r.dense
	active := numThreads
	var accBuf []trace.Access

	// Chunk-run tracking piggybacks on thread 0: a chunk run completes
	// when thread 0 finishes each of its chunks (lockstep execution means
	// all threads finish theirs at the same step). It is skipped entirely
	// when neither RecordPerRun nor MaxChunkRuns needs it.
	var t0Trips int64 // parallel-loop trips consumed by thread 0
	var t0PrevKey [2]int64
	t0HaveKey := false

	// Fail fast on a budget that is already blown (expired deadline,
	// oversized initial state) even when the run is shorter than one
	// amortized check interval.
	if r.budgeted {
		if err := r.budget.Check(0, r.estimateStateBytes()); err != nil {
			return nil, err
		}
	}

	for active > 0 {
		res.Steps++
		for t := 0; t < numThreads; t++ {
			cur := cursors[t]
			if cur.Done() {
				continue
			}
			if !cur.Next() {
				active--
				continue
			}
			res.Iterations++
			if t == 0 && r.trackRuns {
				key := [2]int64{prefixFingerprint(cur, r.nest.ParLevel), cur.ParallelTrip()}
				if !t0HaveKey || key != t0PrevKey {
					t0Trips++
					t0PrevKey = key
					t0HaveKey = true
					// Thread 0 runs first within a lockstep step, so at the
					// moment it begins a new chunk every thread has finished
					// the previous chunk run and none of the new run's
					// accesses have been processed: snapshot here.
					for completed := (t0Trips - 1) / r.plan.Chunk; res.ChunkRunsEvaluated < completed; {
						res.ChunkRunsEvaluated++
						if r.recordPerRun {
							res.PerRun = append(res.PerRun, res.FSCases)
						}
						if r.maxRuns > 0 && res.ChunkRunsEvaluated >= r.maxRuns {
							res.Truncated = true
							return res, nil
						}
					}
				}
			}
			accBuf = r.gen.Accesses(cur.Vals(), accBuf)
			for i := range accBuf {
				a := &accBuf[i]
				first, last := cache.LinesTouched(a.Addr, a.Size, lineSize)
				for line := first; line <= last; line++ {
					res.Accesses++
					if r.budgeted && res.Accesses >= r.nextCheck {
						r.nextCheck = res.Accesses + budgetCheckEvery
						if err := r.budget.Check(res.Accesses, r.estimateStateBytes()); err != nil {
							return nil, err
						}
					}
					if dense {
						if !r.accessDense(t, line, a.Write, int(a.Ref)) {
							return nil, errDenseRange
						}
					} else {
						r.accessMap(t, line, a.Write, int(a.Ref))
					}
				}
			}
		}
	}
	// Close out the final (possibly partial) chunk run(s).
	if r.recordPerRun && r.plan.Chunk > 0 {
		finalRuns := (t0Trips + r.plan.Chunk - 1) / r.plan.Chunk
		for res.ChunkRunsEvaluated < finalRuns {
			res.ChunkRunsEvaluated++
			res.PerRun = append(res.PerRun, res.FSCases)
		}
	}
	return res, nil
}

// estimateStateBytes approximates the run's live modeled state for
// Budget.MaxStateBytes: the dense backend's size is fixed at setup; the
// map backend is priced per directory entry plus per-thread stack nodes
// (the set-associative ablation is capacity-bounded and counted via its
// fixed geometry at worst).
func (r *run) estimateStateBytes() int64 {
	if r.dense {
		return r.denseBytes
	}
	bytes := int64(len(r.dir)) * dirMapEntryBytes
	for _, st := range r.states {
		if fa, ok := st.(*cache.FullyAssoc); ok {
			bytes += int64(fa.Len()) * stackNodeBytes
		}
	}
	return bytes
}

// accessDense performs steps 3–4 of the model for one (thread, line)
// access on the dense backend: the 1-to-All ϕ comparison against the flat
// directory, coherence bookkeeping per the counting mode, and the FlatLRU
// update — all index arithmetic, no hashing, no allocation. It reports
// false when line falls outside the dense window.
func (r *run) accessDense(t int, line int64, write bool, refIdx int) bool {
	idx := line - r.base
	if idx < 0 || idx >= int64(len(r.ddir)) {
		return false
	}
	res := r.res
	e := &r.ddir[idx]
	ownerBefore := e.owner
	tBit := uint64(1) << uint(t)

	// ϕ with mask: another thread holds this line Modified.
	if e.owner >= 0 && int(e.owner) != t {
		res.FSCases++
		if refIdx >= 0 && refIdx < len(res.ByRef) {
			res.ByRef[refIdx].FSCases++
		}
		if r.trackHot {
			res.hotLines[line]++
		}
		r.dstates[e.owner].Downgrade(idx)
		e.owner = -1
	}

	if r.mode == CountMESI && write {
		others := e.holders &^ tBit
		for others != 0 {
			u := bits.TrailingZeros64(others)
			others &^= 1 << uint(u)
			r.dstates[u].Invalidate(idx)
			e.holders &^= 1 << uint(u)
			res.Invalidations++
		}
	}

	tr := r.dstates[t].Touch(idx, write)
	if !tr.Hit {
		res.ColdMisses++
		e.holders |= tBit
	}
	if tr.Evicted {
		res.CapacityEvictions++
		ev := &r.ddir[tr.EvictedLine]
		ev.holders &^= tBit
		if int(ev.owner) == t || ev.holders == 0 {
			// holders == 0 mirrors the map path's entry deletion.
			ev.owner = -1
		}
	}
	if write {
		if ownerBefore != int8(t) || (tr.Hit && !tr.WasModified) {
			r.mut++
		}
		e.owner = int8(t)
	}
	return true
}

// accessMap is accessDense's general-purpose twin over the map-backed
// directory and the threadState interface (pointer-based FullyAssoc or the
// set-associative ablation).
func (r *run) accessMap(t int, line int64, write bool, refIdx int) {
	res := r.res
	e, known := r.dir[line]
	if !known {
		e.owner = -1
	}
	ownerBefore := e.owner
	tBit := uint64(1) << uint(t)

	// ϕ with mask: another thread holds this line Modified.
	if e.owner >= 0 && int(e.owner) != t {
		res.FSCases++
		if refIdx >= 0 && refIdx < len(res.ByRef) {
			res.ByRef[refIdx].FSCases++
		}
		if r.trackHot {
			res.hotLines[line]++
		}
		r.states[e.owner].Downgrade(line)
		e.owner = -1
	}

	if r.mode == CountMESI && write {
		others := e.holders &^ tBit
		for others != 0 {
			u := bits.TrailingZeros64(others)
			others &^= 1 << uint(u)
			r.states[u].Invalidate(line)
			e.holders &^= 1 << uint(u)
			res.Invalidations++
		}
	}

	tr := r.states[t].Touch(line, write)
	if !tr.Hit {
		res.ColdMisses++
		e.holders |= tBit
	}
	if tr.Evicted {
		res.CapacityEvictions++
		// Guard against lines the directory never saw: a zero-valued
		// entry would alias owner 0 to thread 0. Update the looked-up
		// entry in place and drop it once no thread holds a copy.
		if evicted, ok := r.dir[tr.EvictedLine]; ok {
			evicted.holders &^= tBit
			if int(evicted.owner) == t {
				evicted.owner = -1
			}
			if evicted.holders == 0 {
				delete(r.dir, tr.EvictedLine)
			} else {
				r.dir[tr.EvictedLine] = evicted
			}
		}
	}
	if write {
		if ownerBefore != int8(t) || (tr.Hit && !tr.WasModified) {
			r.mut++
		}
		e.owner = int8(t)
	}
	r.dir[line] = e
}

// prefixFingerprint summarizes the loop-variable values above the parallel
// level so chunk-run counting notices when a new parallel-loop instance
// begins. Values are folded; collisions would only perturb run sampling,
// not FS counts.
func prefixFingerprint(c *trace.ThreadCursor, parLevel int) int64 {
	if parLevel <= 0 {
		return 0
	}
	var h int64 = 1469598103934665603
	vals := c.Vals()
	for i := 0; i < parLevel; i++ {
		h = h*1099511628211 + vals[i]
	}
	return h
}

// prepare resolves the scheduling plan and builds the trace generator.
func prepare(nest *loopir.Nest, opts Options) (sched.Plan, *trace.Generator, error) {
	par := nest.Parallelized()
	if par == nil {
		return sched.Plan{}, nil, fmt.Errorf("fsmodel: nest has no parallel loop (missing omp pragma)")
	}
	// Explicit options win over the source pragma: the analysis explores
	// schedules the compiler might substitute. The pragma supplies
	// defaults when options leave a knob unset.
	threads := opts.NumThreads
	if threads <= 0 && par.Parallel.NumThreads > 0 {
		threads = par.Parallel.NumThreads
	}
	if threads <= 0 {
		threads = opts.Machine.Cores
	}
	chunk := opts.Chunk
	if chunk <= 0 && par.Parallel.Chunk > 0 {
		chunk = par.Parallel.Chunk
	}
	kind, err := sched.KindFromString(par.Parallel.Schedule)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	trip, _ := par.ConstTripCount()
	plan, err := sched.Resolve(kind, threads, chunk, trip)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	gen, err := trace.NewGenerator(nest, plan)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	return plan, gen, nil
}

// totalChunkRuns computes how many full team cycles the complete loop
// contains: the paper's x_max. For a rectangular nest this is
// instances(outer loops) × ceil(parallel trips / (chunk·threads)).
func totalChunkRuns(nest *loopir.Nest, plan sched.Plan) int64 {
	instances := int64(1)
	for i := 0; i < nest.ParLevel; i++ {
		t, ok := nest.Loops[i].ConstTripCount()
		if !ok {
			return 0 // unknown bounds: the model reports per-cycle rates only
		}
		instances *= t
	}
	parTrips, ok := nest.Loops[nest.ParLevel].ConstTripCount()
	if !ok {
		return 0
	}
	return instances * plan.Cycles(parTrips)
}
