// Package fsmodel implements the paper's contribution: the compile-time
// false-sharing cost model for OpenMP parallel loops (Section III).
//
// Given a lowered loop nest, the model
//
//  1. takes the array references of the innermost loop (collected during
//     lowering),
//  2. generates, per lockstep iteration, a cache-line ownership list for
//     each thread under static round-robin chunk scheduling,
//  3. maintains a per-thread cache state — a fully-associative LRU stack
//     (stack distance analysis) — and
//  4. detects false sharing with the paper's 1-to-All comparison: when
//     thread j touches cache line cl, one FS case is counted for every
//     other thread whose cache state holds cl in Modified state (the ϕ
//     function of Eq. 3, masked to exclude j's own state per Eq. 4).
//
// Counting modes: CountPaperPhi reproduces the paper's ϕ exactly, with a
// Modified copy downgraded once it has been counted against (so each
// coherence event is counted once, matching "an FS case" = one
// unnecessary coherence miss). CountMESI additionally invalidates remote
// copies on writes, the behaviour of a real write-invalidate protocol;
// the difference between the two is an ablation the benchmarks measure.
package fsmodel

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// CountingMode selects how FS cases are detected and how remote copies are
// treated after detection.
type CountingMode int

const (
	// CountPaperPhi is the paper's ϕ/mask counting (Equations 3–4): an FS
	// case whenever the accessed line is held Modified by another thread;
	// the remote copy is downgraded to clean after being counted.
	CountPaperPhi CountingMode = iota
	// CountMESI is write-invalidate-faithful: reads of a remotely
	// Modified line count and downgrade (as above); writes additionally
	// invalidate every remote copy of the line.
	CountMESI
)

// String names the mode.
func (m CountingMode) String() string {
	switch m {
	case CountPaperPhi:
		return "paper-phi"
	case CountMESI:
		return "mesi"
	}
	return fmt.Sprintf("CountingMode(%d)", int(m))
}

// Options configures an analysis run.
type Options struct {
	// Machine supplies line size and private-cache capacity. Defaults to
	// machine.Paper48().
	Machine *machine.Desc
	// NumThreads is the thread count when the pragma does not fix one.
	NumThreads int
	// Chunk overrides the schedule chunk when the pragma does not fix one
	// (0 keeps the OpenMP static default of one block per thread).
	Chunk int64
	// StackDepth is the per-thread cache-state capacity in lines.
	// 0 uses the machine's largest private cache; negative means
	// unbounded (infinite stack).
	StackDepth int
	// Associativity > 0 switches the per-thread cache state from the
	// paper's fully-associative stack to a set-associative array with
	// that many ways (an ablation; the paper argues fully-associative is
	// a valid approximation for highly associative caches).
	Associativity int64
	// Counting selects the FS detection semantics.
	Counting CountingMode
	// MaxChunkRuns, when positive, stops the analysis after that many
	// chunk runs of the thread team (the prediction model's sampling).
	MaxChunkRuns int64
	// RecordPerRun records the cumulative FS count after every chunk run
	// (needed for Fig. 6 and the prediction model). Enabled implicitly
	// when MaxChunkRuns is set.
	RecordPerRun bool
	// TrackHotLines additionally attributes FS cases to individual cache
	// lines (Result.HotLines), at a small per-FS-event cost.
	TrackHotLines bool
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = machine.Paper48()
	}
	if o.StackDepth == 0 {
		o.StackDepth = o.Machine.PrivateCacheLines()
	}
	if o.StackDepth < 0 {
		o.StackDepth = 0 // unbounded for cache.NewFullyAssoc
	}
	if o.MaxChunkRuns > 0 {
		o.RecordPerRun = true
	}
	return o
}

// Result is the outcome of one model run.
type Result struct {
	// FSCases is the total number of false sharing cases detected
	// (the paper's N_fs / N_nfs depending on the chunk size analyzed).
	FSCases int64
	// Invalidations counts remote-copy invalidations (CountMESI only).
	Invalidations int64

	// Iterations is the total number of innermost-loop iterations
	// executed across all threads; Steps is the lockstep horizon (the
	// All_num_of_iters / num_of_threads of the paper).
	Iterations int64
	Steps      int64
	Accesses   int64

	// ColdMisses and CapacityEvictions summarize per-thread cache-state
	// behaviour (inputs to diagnostics, not to FS counting).
	ColdMisses        int64
	CapacityEvictions int64

	// ChunkRunsEvaluated is how many full team cycles were processed;
	// ChunkRunsTotal is how many the complete loop contains.
	ChunkRunsEvaluated int64
	ChunkRunsTotal     int64
	// PerRun[i] is the cumulative FS count after chunk run i+1 (present
	// when Options.RecordPerRun).
	PerRun []int64
	// Truncated reports that MaxChunkRuns stopped the run early.
	Truncated bool

	Plan sched.Plan
	Mode CountingMode
	// SkippedRefs lists non-affine references excluded from the model.
	SkippedRefs []string
	// ByRef attributes FS cases to the source reference whose access
	// detected them, index-aligned with the nest's analyzable refs. This
	// is the "identify the victim data structure" output the paper calls
	// hard to obtain by hand (Section II-A).
	ByRef []RefAttribution
	// hotLines maps cache line -> FS count (Options.TrackHotLines).
	hotLines map[int64]int64
}

// RefAttribution is the FS share of one source-level reference.
type RefAttribution struct {
	Src     string // source text, e.g. "tid_args[j].sx"
	Symbol  string // array/struct name
	Write   bool
	FSCases int64
}

// LineAttribution is the FS share of one cache line (Options.TrackHotLines).
type LineAttribution struct {
	Line    int64  // cache-line index (address / line size)
	Symbol  string // symbol owning the line, if any
	Offset  int64  // byte offset of the line within the symbol
	FSCases int64
}

// Victims returns the attribution entries with nonzero FS counts, sorted
// by descending count (stable on ties).
func (r *Result) Victims() []RefAttribution {
	out := make([]RefAttribution, 0, len(r.ByRef))
	for _, a := range r.ByRef {
		if a.FSCases > 0 {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FSCases > out[j].FSCases })
	return out
}

// HotLines returns the top-n cache lines by FS count, each resolved to
// the symbol whose storage contains it (Options.TrackHotLines must have
// been set; nil otherwise). This is the per-line view a runtime detector
// like the authors' DARWIN reports, obtained here without executing the
// program.
func (r *Result) HotLines(nest *loopir.Nest, lineSize int64, n int) []LineAttribution {
	if r.hotLines == nil {
		return nil
	}
	out := make([]LineAttribution, 0, len(r.hotLines))
	for line, cases := range r.hotLines {
		la := LineAttribution{Line: line, FSCases: cases}
		addr := line * lineSize
		for _, ref := range nest.Refs {
			if ref.Sym != nil && addr >= ref.Sym.Base && addr < ref.Sym.Base+ref.Sym.Size() {
				la.Symbol = ref.Sym.Name
				la.Offset = addr - ref.Sym.Base
				break
			}
		}
		out = append(out, la)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FSCases != out[j].FSCases {
			return out[i].FSCases > out[j].FSCases
		}
		return out[i].Line < out[j].Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// VictimSymbols aggregates FS counts per symbol, sorted by descending
// count.
func (r *Result) VictimSymbols() []RefAttribution {
	bySym := map[string]int64{}
	order := []string{}
	for _, a := range r.ByRef {
		if a.FSCases == 0 {
			continue
		}
		if _, seen := bySym[a.Symbol]; !seen {
			order = append(order, a.Symbol)
		}
		bySym[a.Symbol] += a.FSCases
	}
	out := make([]RefAttribution, 0, len(order))
	for _, s := range order {
		out = append(out, RefAttribution{Src: s, Symbol: s, FSCases: bySym[s]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FSCases > out[j].FSCases })
	return out
}

// FSPerIteration returns FS cases per innermost iteration.
func (r *Result) FSPerIteration() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.FSCases) / float64(r.Iterations)
}

// threadState abstracts the per-thread cache state so the fully
// associative stack and the set-associative ablation share the hot loop.
type threadState interface {
	Touch(line int64, write bool) cache.TouchResult
	Downgrade(line int64)
	Invalidate(line int64) bool
}

// setAssocState adapts cache.SetAssoc to the threadState interface.
type setAssocState struct{ c *cache.SetAssoc }

func (s setAssocState) Touch(line int64, write bool) cache.TouchResult {
	var res cache.TouchResult
	st := s.c.Access(line)
	if st != cache.Invalid {
		res.Hit = true
		res.WasModified = st == cache.Modified
		if write {
			s.c.SetState(line, cache.Modified)
		}
		return res
	}
	newState := cache.Shared
	if write {
		newState = cache.Modified
	}
	if ev, ok := s.c.Fill(line, newState); ok {
		res.Evicted = true
		res.EvictedLine = ev.Line
		res.EvictedDirty = ev.State == cache.Modified
	}
	return res
}

func (s setAssocState) Downgrade(line int64) {
	if s.c.State(line) == cache.Modified {
		s.c.SetState(line, cache.Shared)
	}
}

func (s setAssocState) Invalidate(line int64) bool {
	return s.c.Invalidate(line) != cache.Invalid
}

// dirEntry tracks, per cache line, which threads hold a copy (bitmask) and
// which single thread holds it Modified (-1 if none). Maintaining the
// directory alongside the per-thread stacks makes the 1-to-All comparison
// O(1) per access instead of O(threads).
type dirEntry struct {
	holders uint64
	owner   int8
}

// Analyze runs the false-sharing cost model over the nest.
func Analyze(nest *loopir.Nest, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	plan, gen, err := prepare(nest, opts)
	if err != nil {
		return nil, err
	}
	if plan.NumThreads > 64 {
		return nil, fmt.Errorf("fsmodel: at most 64 threads supported, got %d", plan.NumThreads)
	}

	res := &Result{Plan: plan, Mode: opts.Counting, SkippedRefs: gen.Skipped}
	res.ChunkRunsTotal = totalChunkRuns(nest, plan)
	if opts.TrackHotLines {
		res.hotLines = make(map[int64]int64)
	}
	for _, r := range nest.AnalyzableRefs() {
		res.ByRef = append(res.ByRef, RefAttribution{Src: r.Src, Symbol: r.Sym.Name, Write: r.Write})
	}

	states := make([]threadState, plan.NumThreads)
	for t := range states {
		if opts.Associativity > 0 {
			geom := cache.Geometry{
				SizeBytes: int64(opts.StackDepth) * opts.Machine.LineSize,
				LineSize:  opts.Machine.LineSize,
				Assoc:     opts.Associativity,
			}
			sa, err := cache.NewSetAssoc(geom)
			if err != nil {
				return nil, fmt.Errorf("fsmodel: set-associative ablation: %w", err)
			}
			states[t] = setAssocState{c: sa}
		} else {
			states[t] = cache.NewFullyAssoc(opts.StackDepth)
		}
	}

	dir := make(map[int64]dirEntry)
	cursors := gen.Cursors()
	lineSize := opts.Machine.LineSize
	active := plan.NumThreads
	var accBuf []trace.Access

	// Chunk-run tracking piggybacks on thread 0: a chunk run completes
	// when thread 0 finishes each of its chunks (lockstep execution means
	// all threads finish theirs at the same step).
	var t0Trips int64 // parallel-loop trips consumed by thread 0
	var t0PrevKey [2]int64
	t0HaveKey := false

	for active > 0 {
		res.Steps++
		for t := 0; t < plan.NumThreads; t++ {
			cur := cursors[t]
			if cur.Done() {
				continue
			}
			if !cur.Next() {
				active--
				continue
			}
			res.Iterations++
			if t == 0 {
				key := [2]int64{prefixFingerprint(cur, nest.ParLevel), cur.ParallelTrip()}
				if !t0HaveKey || key != t0PrevKey {
					t0Trips++
					t0PrevKey = key
					t0HaveKey = true
					// Thread 0 runs first within a lockstep step, so at the
					// moment it begins a new chunk every thread has finished
					// the previous chunk run and none of the new run's
					// accesses have been processed: snapshot here.
					if opts.RecordPerRun || opts.MaxChunkRuns > 0 {
						for completed := (t0Trips - 1) / plan.Chunk; res.ChunkRunsEvaluated < completed; {
							res.ChunkRunsEvaluated++
							if opts.RecordPerRun {
								res.PerRun = append(res.PerRun, res.FSCases)
							}
							if opts.MaxChunkRuns > 0 && res.ChunkRunsEvaluated >= opts.MaxChunkRuns {
								res.Truncated = true
								return res, nil
							}
						}
					}
				}
			}
			accBuf = gen.Accesses(cur.Vals(), accBuf)
			for i := range accBuf {
				a := &accBuf[i]
				first, last := cache.LinesTouched(a.Addr, a.Size, lineSize)
				for line := first; line <= last; line++ {
					res.Accesses++
					processAccess(res, dir, states, t, line, a.Write, int(a.Ref), opts.Counting)
				}
			}
		}
	}
	// Close out the final (possibly partial) chunk run(s).
	if opts.RecordPerRun && plan.Chunk > 0 {
		finalRuns := (t0Trips + plan.Chunk - 1) / plan.Chunk
		for res.ChunkRunsEvaluated < finalRuns {
			res.ChunkRunsEvaluated++
			res.PerRun = append(res.PerRun, res.FSCases)
		}
	}
	return res, nil
}

// processAccess performs steps 3–4 of the model for one (thread, line)
// access: the 1-to-All ϕ comparison against the directory, coherence
// bookkeeping per the counting mode, and the LRU stack update.
func processAccess(res *Result, dir map[int64]dirEntry, states []threadState, t int, line int64, write bool, refIdx int, mode CountingMode) {
	e, known := dir[line]
	if !known {
		e.owner = -1
	}
	tBit := uint64(1) << uint(t)

	// ϕ with mask: another thread holds this line Modified.
	if e.owner >= 0 && int(e.owner) != t {
		res.FSCases++
		if refIdx >= 0 && refIdx < len(res.ByRef) {
			res.ByRef[refIdx].FSCases++
		}
		if res.hotLines != nil {
			res.hotLines[line]++
		}
		states[e.owner].Downgrade(line)
		e.owner = -1
	}

	if mode == CountMESI && write {
		others := e.holders &^ tBit
		for others != 0 {
			u := bits.TrailingZeros64(others)
			others &^= 1 << uint(u)
			states[u].Invalidate(line)
			e.holders &^= 1 << uint(u)
			res.Invalidations++
		}
	}

	tr := states[t].Touch(line, write)
	if !tr.Hit {
		res.ColdMisses++
		e.holders |= tBit
	}
	if tr.Evicted {
		res.CapacityEvictions++
		evicted := dir[tr.EvictedLine]
		evicted.holders &^= tBit
		if int(evicted.owner) == t {
			evicted.owner = -1
		}
		if evicted.holders == 0 {
			delete(dir, tr.EvictedLine)
		} else {
			dir[tr.EvictedLine] = evicted
		}
	}
	if write {
		e.owner = int8(t)
	}
	dir[line] = e
}

// prefixFingerprint summarizes the loop-variable values above the parallel
// level so chunk-run counting notices when a new parallel-loop instance
// begins. Values are folded; collisions would only perturb run sampling,
// not FS counts.
func prefixFingerprint(c *trace.ThreadCursor, parLevel int) int64 {
	if parLevel <= 0 {
		return 0
	}
	var h int64 = 1469598103934665603
	vals := c.Vals()
	for i := 0; i < parLevel; i++ {
		h = h*1099511628211 + vals[i]
	}
	return h
}

// prepare resolves the scheduling plan and builds the trace generator.
func prepare(nest *loopir.Nest, opts Options) (sched.Plan, *trace.Generator, error) {
	par := nest.Parallelized()
	if par == nil {
		return sched.Plan{}, nil, fmt.Errorf("fsmodel: nest has no parallel loop (missing omp pragma)")
	}
	// Explicit options win over the source pragma: the analysis explores
	// schedules the compiler might substitute. The pragma supplies
	// defaults when options leave a knob unset.
	threads := opts.NumThreads
	if threads <= 0 && par.Parallel.NumThreads > 0 {
		threads = par.Parallel.NumThreads
	}
	if threads <= 0 {
		threads = opts.Machine.Cores
	}
	chunk := opts.Chunk
	if chunk <= 0 && par.Parallel.Chunk > 0 {
		chunk = par.Parallel.Chunk
	}
	kind, err := sched.KindFromString(par.Parallel.Schedule)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	trip, _ := par.ConstTripCount()
	plan, err := sched.Resolve(kind, threads, chunk, trip)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	gen, err := trace.NewGenerator(nest, plan)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	return plan, gen, nil
}

// totalChunkRuns computes how many full team cycles the complete loop
// contains: the paper's x_max. For a rectangular nest this is
// instances(outer loops) × ceil(parallel trips / (chunk·threads)).
func totalChunkRuns(nest *loopir.Nest, plan sched.Plan) int64 {
	instances := int64(1)
	for i := 0; i < nest.ParLevel; i++ {
		t, ok := nest.Loops[i].ConstTripCount()
		if !ok {
			return 0 // unknown bounds: the model reports per-cycle rates only
		}
		instances *= t
	}
	parTrips, ok := nest.Loops[nest.ParLevel].ConstTripCount()
	if !ok {
		return 0
	}
	return instances * plan.Cycles(parTrips)
}
