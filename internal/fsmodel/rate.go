package fsmodel

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/loopir"
)

// RateResult is the model's output for loops whose bounds are unknown at
// compile time: the paper's fallback of reporting the FS rate per full
// cycle of iterations executed by the thread team (Section III), instead
// of a whole-loop total.
type RateResult struct {
	*Result
	// FSPerChunkRun is the steady-state FS rate: cases per full team
	// cycle, measured over the evaluated prefix.
	FSPerChunkRun float64
	// Assumed records the synthetic value substituted for each symbolic
	// bound parameter so that `runs` chunk runs could be evaluated.
	Assumed map[string]int64
}

// AnalyzeRate analyzes a nest whose parallel-loop bound is a symbolic
// parameter (lowered with loopir.LowerOptions.SymbolicBounds): it
// substitutes a synthetic bound large enough to cover `runs` chunk runs,
// evaluates that prefix, and reports the per-chunk-run FS rate. Nests with
// fully constant bounds are accepted too (the substitution is a no-op and
// the evaluation is truncated to `runs` runs).
//
// Only the parallelized loop's bounds may reference a parameter, and its
// limit must depend on exactly one parameter with a positive coefficient —
// the common `for (i = 0; i < n; i++)` shape.
func AnalyzeRate(nest *loopir.Nest, opts Options, runs int64) (*RateResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("fsmodel: rate analysis needs at least 1 chunk run, got %d", runs)
	}
	opts = opts.withDefaults()
	params := nest.Params()
	assumed := map[string]int64{}

	analyzed := nest
	if len(params) > 0 {
		par := nest.Parallelized()
		if par == nil {
			return nil, fmt.Errorf("fsmodel: nest has no parallel loop")
		}
		// Parameters may appear only in the parallel loop's bounds.
		for i, l := range nest.Loops {
			if i == nest.ParLevel {
				continue
			}
			for _, p := range params {
				if l.First.DependsOn(p) || l.Limit.DependsOn(p) {
					return nil, fmt.Errorf("fsmodel: loop %q bound depends on unknown %q; only the parallel loop may have symbolic bounds", l.Var, p[1:])
				}
			}
		}
		first, ok := par.First.ConstValue()
		if !ok {
			return nil, fmt.Errorf("fsmodel: parallel loop %q lower bound must be constant for rate analysis", par.Var)
		}
		var param string
		var coeff int64
		for _, p := range params {
			if c := par.Limit.Coeff(p); c != 0 {
				if param != "" {
					return nil, fmt.Errorf("fsmodel: parallel loop limit depends on multiple unknowns (%s, %s)", param[1:], p[1:])
				}
				param, coeff = p, c
			}
		}
		if param == "" {
			return nil, fmt.Errorf("fsmodel: parallel loop limit has no symbolic dependence to solve for")
		}
		if coeff < 0 {
			return nil, fmt.Errorf("fsmodel: parallel loop limit has negative dependence on %q", param[1:])
		}

		// Choose the parameter value so the loop runs `runs` full cycles:
		// limit_target = first + step·chunk·threads·runs.
		threads := int64(opts.NumThreads)
		if par.Parallel.NumThreads > 0 {
			threads = int64(par.Parallel.NumThreads)
		}
		if threads <= 0 {
			threads = int64(opts.Machine.Cores)
		}
		chunk := opts.Chunk
		if par.Parallel.Chunk > 0 {
			chunk = par.Parallel.Chunk
		}
		if chunk <= 0 {
			chunk = 1 // unknown trip count: the paper's round-robin default
		}
		limitTarget := first + par.Step*chunk*threads*runs
		rest := par.Limit.Substitute(param, affine.Const(0))
		restC, ok := rest.ConstValue()
		if !ok {
			return nil, fmt.Errorf("fsmodel: parallel loop limit too complex for rate analysis: %s", par.Limit.String())
		}
		value := (limitTarget - restC + coeff - 1) / coeff
		if value < 1 {
			value = 1
		}
		assumed[param[1:]] = value

		sub := *par
		sub.First = par.First.Substitute(param, affine.Const(value))
		sub.Limit = par.Limit.Substitute(param, affine.Const(value))
		loops := make([]*loopir.Loop, len(nest.Loops))
		copy(loops, nest.Loops)
		loops[nest.ParLevel] = &sub
		clone := *nest
		clone.Loops = loops
		analyzed = &clone
	}

	opts.MaxChunkRuns = runs
	opts.RecordPerRun = true
	res, err := Analyze(analyzed, opts)
	if err != nil {
		return nil, err
	}
	out := &RateResult{Result: res, Assumed: assumed}
	if len(params) > 0 {
		out.ChunkRunsTotal = 0 // the real total is unknowable
	}
	if res.ChunkRunsEvaluated > 0 {
		// Steady-state rate: prefer the increment between the last two
		// recorded runs (skipping the cold first run) over the mean.
		if n := len(res.PerRun); n >= 2 {
			out.FSPerChunkRun = float64(res.PerRun[n-1] - res.PerRun[n-2])
		} else {
			out.FSPerChunkRun = float64(res.FSCases) / float64(res.ChunkRunsEvaluated)
		}
	}
	return out, nil
}
