package fsmodel

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// machineWithLine clones Paper48 with a different cache-line size, the
// second axis of the differential matrix.
func machineWithLine(t *testing.T, line int64) *machine.Desc {
	t.Helper()
	d := *machine.Paper48()
	d.Name = fmt.Sprintf("paper48-l%d", line)
	d.LineSize = line
	d.L1.LineSize = line
	d.L2.LineSize = line
	d.L3.LineSize = line
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return &d
}

// requireSameEval compares every externally observable field of an
// interpreted and a compiled run except the Eval tag itself (and the
// extrapolation echo fields, which only the compiled path can set).
func requireSameEval(t *testing.T, label string, interp, comp *Result) {
	t.Helper()
	if interp.Eval != EvalInterpreted {
		t.Fatalf("%s: interpreted run reports eval %v", label, interp.Eval)
	}
	if comp.Eval != EvalCompiled {
		t.Fatalf("%s: compiled run reports eval %v", label, comp.Eval)
	}
	type counters struct {
		FSCases, Invalidations, Iterations, Steps, Accesses int64
		ColdMisses, CapacityEvictions                       int64
		ChunkRunsEvaluated, ChunkRunsTotal                  int64
		Truncated                                           bool
	}
	i := counters{interp.FSCases, interp.Invalidations, interp.Iterations, interp.Steps, interp.Accesses,
		interp.ColdMisses, interp.CapacityEvictions, interp.ChunkRunsEvaluated, interp.ChunkRunsTotal, interp.Truncated}
	c := counters{comp.FSCases, comp.Invalidations, comp.Iterations, comp.Steps, comp.Accesses,
		comp.ColdMisses, comp.CapacityEvictions, comp.ChunkRunsEvaluated, comp.ChunkRunsTotal, comp.Truncated}
	if i != c {
		t.Fatalf("%s: counters differ:\ninterpreted: %+v\ncompiled:    %+v", label, i, c)
	}
	if !reflect.DeepEqual(interp.PerRun, comp.PerRun) {
		t.Fatalf("%s: PerRun differs:\ninterpreted: %v\ncompiled:    %v", label, interp.PerRun, comp.PerRun)
	}
	if !reflect.DeepEqual(interp.ByRef, comp.ByRef) {
		t.Fatalf("%s: ByRef differs:\ninterpreted: %+v\ncompiled:    %+v", label, interp.ByRef, comp.ByRef)
	}
	if !reflect.DeepEqual(interp.hotLines, comp.hotLines) {
		t.Fatalf("%s: hot lines differ:\ninterpreted: %v\ncompiled:    %v", label, interp.hotLines, comp.hotLines)
	}
}

// analyzeBothEvals runs the same options once under each forced evaluator.
func analyzeBothEvals(t *testing.T, label string, nest *loopir.Nest, opts Options) (*Result, *Result) {
	t.Helper()
	opts.Eval = EvalInterpreted
	interp, err := Analyze(nest, opts)
	if err != nil {
		t.Fatalf("%s interpreted: %v", label, err)
	}
	opts.Eval = EvalCompiled
	comp, err := Analyze(nest, opts)
	if err != nil {
		t.Fatalf("%s compiled: %v", label, err)
	}
	return interp, comp
}

// TestCompiledMatchesInterpretedKernels is the tentpole's golden gate: on
// every paper kernel, at chunks {1, 2, 8, L/8} and line sizes {64, 128},
// under both counting modes, with per-run recording and hot-line tracking
// on, the compiled access-run executor and the per-iteration interpreter
// produce identical results in every field.
func TestCompiledMatchesInterpretedKernels(t *testing.T) {
	nests := goldenKernels(t)
	for _, line := range []int64{64, 128} {
		m := machineWithLine(t, line)
		chunks := []int64{1, 2, 8}
		if line/8 != 8 {
			chunks = append(chunks, line/8)
		}
		for name, nest := range nests {
			for _, chunk := range chunks {
				for _, mode := range []CountingMode{CountPaperPhi, CountMESI} {
					label := fmt.Sprintf("%s line=%d chunk=%d mode=%v", name, line, chunk, mode)
					opts := Options{
						Machine: m, NumThreads: 8, Chunk: chunk,
						Counting: mode, RecordPerRun: true, TrackHotLines: true,
					}
					interp, comp := analyzeBothEvals(t, label, nest, opts)
					requireSameEval(t, label, interp, comp)
				}
			}
		}
	}
}

// TestCompiledMatchesInterpretedSmallStack repeats the cross-check where
// capacity evictions dominate, on both state backends: the compiled
// executor must drive the map directory exactly like the dense one.
func TestCompiledMatchesInterpretedSmallStack(t *testing.T) {
	nests := goldenKernels(t)
	for name, nest := range nests {
		for _, depth := range []int{1, 2, 7} {
			for _, backend := range []StateBackend{BackendDense, BackendMap} {
				label := fmt.Sprintf("%s depth=%d backend=%v", name, depth, backend)
				opts := Options{
					Machine: machine.Paper48(), NumThreads: 4, Chunk: 1,
					StackDepth: depth, Counting: CountMESI, Backend: backend,
					RecordPerRun: true, TrackHotLines: true,
				}
				interp, comp := analyzeBothEvals(t, label, nest, opts)
				requireSameEval(t, label, interp, comp)
			}
		}
	}
}

// corpusNests parses every mini-C source under testdata/ and
// examples/lint/ and returns each of its loop nests.
func corpusNests(t *testing.T) map[string]*loopir.Nest {
	t.Helper()
	out := map[string]*loopir.Nest{}
	for _, dir := range []string{"../../testdata", "../../examples/lint"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) != ".c" {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := minic.Parse(string(src))
			if err != nil {
				t.Fatalf("%s: parse: %v", e.Name(), err)
			}
			unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
			if err != nil {
				t.Fatalf("%s: lower: %v", e.Name(), err)
			}
			for i, n := range unit.Nests {
				out[fmt.Sprintf("%s#%d", e.Name(), i)] = n
			}
		}
	}
	return out
}

// TestCompiledMatchesInterpretedCorpus runs the differential gate over
// every nest in the repository's source corpus. Nests the interpreter
// rejects (symbolic bounds, no parallel loop) must be rejected by the
// auto path identically; every nest it accepts must produce identical
// counters compiled.
func TestCompiledMatchesInterpretedCorpus(t *testing.T) {
	for _, chunk := range []int64{1, 8} {
		for label, nest := range corpusNests(t) {
			opts := Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: chunk,
				Counting: CountMESI, RecordPerRun: true}
			opts.Eval = EvalInterpreted
			interp, ierr := Analyze(nest, opts)
			opts.Eval = EvalAuto
			auto, aerr := Analyze(nest, opts)
			if (ierr == nil) != (aerr == nil) {
				t.Fatalf("%s chunk=%d: interpreted err=%v, auto err=%v", label, chunk, ierr, aerr)
			}
			if ierr != nil {
				continue
			}
			if auto.Eval != EvalCompiled {
				t.Errorf("%s chunk=%d: auto resolved to %v, want compiled", label, chunk, auto.Eval)
			}
			if interp.FSCases != auto.FSCases || interp.Accesses != auto.Accesses ||
				interp.Iterations != auto.Iterations || interp.Steps != auto.Steps ||
				interp.ColdMisses != auto.ColdMisses || interp.CapacityEvictions != auto.CapacityEvictions ||
				interp.Invalidations != auto.Invalidations {
				t.Fatalf("%s chunk=%d: counters differ:\ninterpreted: %+v\nauto:        %+v",
					label, chunk, interp, auto)
			}
			if !reflect.DeepEqual(interp.PerRun, auto.PerRun) {
				t.Fatalf("%s chunk=%d: PerRun differs", label, chunk)
			}
			if !reflect.DeepEqual(interp.ByRef, auto.ByRef) {
				t.Fatalf("%s chunk=%d: ByRef differs", label, chunk)
			}
		}
	}
}

// TestBudgetStopsIdenticalAcrossEvals pins the run-batching budget
// contract: the compiled executor amortizes its budget checks at the
// same exact access boundaries as the interpreter, so a tripped MaxSteps
// budget reports the identical Used count under both evaluators, and the
// overshoot stays within one check interval.
func TestBudgetStopsIdenticalAcrossEvals(t *testing.T) {
	kern, err := kernels.Heat(16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1}
	full, err := Analyze(kern.Nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Budget = guard.Budget{MaxSteps: full.Accesses / 2}
	var used [2]int64
	for i, eval := range []EvalMode{EvalInterpreted, EvalCompiled} {
		opts.Eval = eval
		_, err := Analyze(kern.Nest, opts)
		var be *guard.BudgetError
		if !errors.As(err, &be) || be.Resource != "steps" {
			t.Fatalf("%v: err = %v, want *guard.BudgetError{steps}", eval, err)
		}
		if be.Used <= be.Limit || be.Used > be.Limit+budgetCheckEvery {
			t.Fatalf("%v: stopped at %d for limit %d (interval %d)", eval, be.Used, be.Limit, budgetCheckEvery)
		}
		used[i] = be.Used
	}
	if used[0] != used[1] {
		t.Fatalf("evaluators stopped at different access counts: interpreted %d, compiled %d", used[0], used[1])
	}
}

// TestEvalModeRoundTrip pins the CLI/service spelling of each mode and
// that Result.Eval reports the evaluator that actually ran.
func TestEvalModeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EvalMode
	}{{"", EvalAuto}, {"auto", EvalAuto}, {"compiled", EvalCompiled}, {"interpreted", EvalInterpreted}} {
		got, err := EvalModeFromString(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("EvalModeFromString(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := EvalModeFromString("fancy"); err == nil {
		t.Fatal("EvalModeFromString accepted an unknown mode")
	}
	nest := goldenKernels(t)["heat"]
	for _, tc := range []struct {
		eval EvalMode
		want EvalMode
	}{{EvalAuto, EvalCompiled}, {EvalCompiled, EvalCompiled}, {EvalInterpreted, EvalInterpreted}} {
		res, err := Analyze(nest, Options{Machine: machine.Paper48(), NumThreads: 8, Eval: tc.eval})
		if err != nil {
			t.Fatal(err)
		}
		if res.Eval != tc.want {
			t.Fatalf("eval=%v ran %v, want %v", tc.eval, res.Eval, tc.want)
		}
	}
}
