package fsmodel

import (
	"errors"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// heatOpts is the budget tests' workload: the heat kernel at its
// FS-inducing chunk, small enough to run fast, large enough that a step
// budget can interrupt it mid-flight.
func heatOpts(t *testing.T) (*kernels.Kernel, Options) {
	t.Helper()
	kern, err := kernels.Heat(16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return kern, Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1}
}

func TestBudgetMaxStepsStopsDeterministically(t *testing.T) {
	kern, opts := heatOpts(t)
	full, err := Analyze(kern.Nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Budget = guard.Budget{MaxSteps: full.Accesses / 2}
	var used []int64
	for i := 0; i < 2; i++ {
		_, err := Analyze(kern.Nest, opts)
		var be *guard.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("run %d: err = %v, want *guard.BudgetError", i, err)
		}
		if !errors.Is(err, guard.ErrBudgetExceeded) {
			t.Fatal("BudgetError does not match guard.ErrBudgetExceeded")
		}
		if be.Resource != "steps" {
			t.Fatalf("tripped on %q, want steps", be.Resource)
		}
		// Amortization bounds the overrun to one check interval.
		if be.Used <= be.Limit || be.Used > be.Limit+budgetCheckEvery {
			t.Fatalf("stopped at %d accesses for limit %d (interval %d)", be.Used, be.Limit, budgetCheckEvery)
		}
		used = append(used, be.Used)
	}
	if used[0] != used[1] {
		t.Fatalf("same input stopped at different accesses: %d vs %d", used[0], used[1])
	}
}

// TestBudgetDoesNotPerturbResults pins the contract that a budget which
// never trips changes nothing: FS counts and every other field match the
// unbudgeted run exactly, on both backends.
func TestBudgetDoesNotPerturbResults(t *testing.T) {
	kern, opts := heatOpts(t)
	for _, backend := range []StateBackend{BackendDense, BackendMap} {
		opts.Backend = backend
		base, err := Analyze(kern.Nest, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Budget = guard.Budget{
			MaxSteps:      base.Accesses + 1,
			MaxStateBytes: 1 << 40,
			Deadline:      time.Now().Add(time.Hour),
		}
		got, err := Analyze(kern.Nest, opts)
		if err != nil {
			t.Fatalf("%v: budgeted run failed: %v", backend, err)
		}
		if got.FSCases != base.FSCases || got.Accesses != base.Accesses ||
			got.Iterations != base.Iterations || got.ColdMisses != base.ColdMisses {
			t.Fatalf("%v: budgeted run diverged: %+v vs %+v", backend, got, base)
		}
		opts.Budget = guard.Budget{}
	}
}

func TestBudgetStateBytesFallsBackThenTrips(t *testing.T) {
	kern, opts := heatOpts(t)
	// Small enough that the dense window cannot be allocated and the map
	// path's growth trips too.
	opts.Budget = guard.Budget{MaxStateBytes: 16 << 10}
	_, err := Analyze(kern.Nest, opts)
	var be *guard.BudgetError
	if !errors.As(err, &be) || be.Resource != "state-bytes" {
		t.Fatalf("err = %v, want *guard.BudgetError{state-bytes}", err)
	}

	// Forcing the dense backend under the same budget must refuse
	// upfront rather than allocate over it.
	opts.Backend = BackendDense
	if _, err := Analyze(kern.Nest, opts); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("forced dense under tiny state budget = %v, want budget exceeded", err)
	}
}

func TestBudgetGenerousStateBytesKeepsDense(t *testing.T) {
	kern, opts := heatOpts(t)
	opts.Budget = guard.Budget{MaxStateBytes: 1 << 40}
	res, err := Analyze(kern.Nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendDense {
		t.Fatalf("generous state budget demoted the backend to %v", res.Backend)
	}
}

func TestBudgetDeadline(t *testing.T) {
	kern, opts := heatOpts(t)
	opts.Budget = guard.Budget{Deadline: time.Now().Add(-time.Second)}
	_, err := Analyze(kern.Nest, opts)
	var be *guard.BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Fatalf("err = %v, want *guard.BudgetError{deadline}", err)
	}
}

// TestBudgetPropagatesThroughRateAndPredict checks the budget reaches
// the sampled-evaluation entry points. Sampled runs may be shorter than
// one amortized check interval, so the expired-deadline dimension (which
// the run-start check catches) is the reliable probe.
func TestBudgetPropagatesThroughRateAndPredict(t *testing.T) {
	kern, opts := heatOpts(t)
	opts.Budget = guard.Budget{Deadline: time.Now().Add(-time.Second)}
	if _, err := Predict(kern.Nest, opts, 4); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("Predict under expired deadline = %v, want budget exceeded", err)
	}
	if _, err := AnalyzeRate(kern.Nest, opts, 4); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("AnalyzeRate under expired deadline = %v, want budget exceeded", err)
	}
}
