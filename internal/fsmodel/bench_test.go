package fsmodel

import (
	"testing"

	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// BenchmarkAnalyzeHotPath compares the evaluation pipelines on the
// heat-diffusion kernel at paper-scale trip counts, the FS-inducing
// chunk, and the paper's 48-thread team: the compiled access-run executor
// (the default) against the per-iteration interpreter, both on the dense
// backend, plus the map backend as the PR-1 baseline data structure.
// allocs/op on the dense paths is the per-run setup only — the per-access
// path allocates nothing.
func BenchmarkAnalyzeHotPath(b *testing.B) {
	kern, err := kernels.Heat(kernels.DefaultHeatRows, kernels.DefaultHeatCols)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		backend StateBackend
		eval    EvalMode
	}{
		// "dense" keeps the PR-1 series name: the default pipeline on the
		// dense backend, which now resolves to the compiled executor.
		{"dense", BackendDense, EvalAuto},
		{"compiled", BackendDense, EvalCompiled},
		{"interpreted", BackendDense, EvalInterpreted},
		{"map", BackendMap, EvalInterpreted},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{
				Machine: machine.Paper48(), NumThreads: 48, Chunk: kernels.HeatFSChunk,
				Backend: bc.backend, Eval: bc.eval,
			}
			var accesses int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Analyze(kern.Nest, opts)
				if err != nil {
					b.Fatal(err)
				}
				accesses = res.Accesses
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// BenchmarkAnalyzeSteadyState measures the chunk-run closure on a
// uniform kernel (dft at the FS chunk divides evenly over the team): the
// extrapolated run simulates until the per-run deltas are provably
// periodic and closes the rest in O(period), against full simulation.
func BenchmarkAnalyzeSteadyState(b *testing.B) {
	kern, err := kernels.DFT(768)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name        string
		extrapolate bool
	}{
		{"full", false},
		{"extrapolated", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{
				Machine: machine.Paper48(), NumThreads: 48, Chunk: kernels.DFTFSChunk,
				Extrapolate: bc.extrapolate,
			}
			var accesses int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Analyze(kern.Nest, opts)
				if err != nil {
					b.Fatal(err)
				}
				if bc.extrapolate && !res.Extrapolated {
					b.Fatal("closure did not fire")
				}
				accesses = res.Accesses
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// BenchmarkAnalyzeBudgetOverhead measures the cost of the amortized
// budget check on the paper-scale hot path: the same workload as
// BenchmarkAnalyzeHotPath/dense, once with no budget (the single
// r.budgeted branch per access) and once with generous limits that
// never trip (branch plus a guard.Budget.Check every budgetCheckEvery
// accesses). The acceptance bar is <2% slowdown versus off.
func BenchmarkAnalyzeBudgetOverhead(b *testing.B) {
	kern, err := kernels.Heat(kernels.DefaultHeatRows, kernels.DefaultHeatCols)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		budget guard.Budget
	}{
		{"off", guard.Budget{}},
		{"on", guard.Budget{MaxSteps: 1 << 40, MaxStateBytes: 1 << 40}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{
				Machine: machine.Paper48(), NumThreads: 48, Chunk: kernels.HeatFSChunk,
				Backend: BackendDense, Budget: bc.budget,
			}
			var accesses int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Analyze(kern.Nest, opts)
				if err != nil {
					b.Fatal(err)
				}
				accesses = res.Accesses
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// BenchmarkAnalyzeHotPathMESI exercises the invalidation loop too.
func BenchmarkAnalyzeHotPathMESI(b *testing.B) {
	kern, err := kernels.DFT(256)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		backend StateBackend
	}{
		{"dense", BackendDense},
		{"map", BackendMap},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{
				Machine: machine.Paper48(), NumThreads: 16, Chunk: kernels.DFTFSChunk,
				Counting: CountMESI, Backend: bc.backend,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(kern.Nest, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
