package fsmodel

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

func loadNest(t *testing.T, src string) *loopir.Nest {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit.Nests[0]
}

func analyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := Analyze(loadNest(t, src), opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// Two threads ping-ponging one cache line: every write after the first
// finds the line Modified in the other thread's cache state.
func TestPingPongHandComputed(t *testing.T) {
	src := `
#define N 8
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(2)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	// 8 writes to one line, alternating threads in lockstep: the very
	// first write finds no Modified copy; each of the remaining 7 does.
	if res.FSCases != 7 {
		t.Fatalf("FS cases = %d, want 7", res.FSCases)
	}
	if res.Iterations != 8 || res.Accesses != 8 {
		t.Fatalf("iterations/accesses = %d/%d", res.Iterations, res.Accesses)
	}
	if res.Plan.NumThreads != 2 || res.Plan.Chunk != 1 {
		t.Fatalf("plan = %+v", res.Plan)
	}
}

// One line per element: no two threads ever share a line.
func TestNoSharingWhenElementsPadded(t *testing.T) {
	src := `
#define N 16
struct Padded { double v; double p1; double p2; double p3;
                double p4; double p5; double p6; double p7; };
struct Padded a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i].v = 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.FSCases != 0 {
		t.Fatalf("FS cases = %d, want 0 (64-byte elements)", res.FSCases)
	}
}

// Chunk alignment: chunk 8 doubles = exactly one line per chunk.
func TestChunkAlignedToLineEliminatesFS(t *testing.T) {
	src := `
#define N 64
double a[N];
#pragma omp parallel for num_threads(4)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	for _, c := range []struct {
		chunk int64
		zero  bool
	}{{1, false}, {2, false}, {8, true}, {16, true}} {
		res, err := Analyze(nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: c.chunk})
		if err != nil {
			t.Fatal(err)
		}
		if c.zero && res.FSCases != 0 {
			t.Errorf("chunk %d: FS = %d, want 0", c.chunk, res.FSCases)
		}
		if !c.zero && res.FSCases == 0 {
			t.Errorf("chunk %d: FS = 0, want > 0", c.chunk)
		}
	}
}

// Read-only sharing must never count as false sharing.
func TestReadOnlySharingIsFree(t *testing.T) {
	src := `
#define N 64
double a[N];
double out[N];
#pragma omp parallel for schedule(static,8) num_threads(4)
for (i = 0; i < N; i++) out[i] = a[0] + a[i];
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.FSCases != 0 {
		t.Fatalf("FS cases = %d, want 0 (reads only on shared lines)", res.FSCases)
	}
}

// A read of a line another thread has modified IS a false-sharing case
// (paper's ϕ does not require the new access to be a write).
func TestReadOfRemotelyModifiedCounts(t *testing.T) {
	// Thread 0 writes w[0] (line W); all threads read w[0]? That would be
	// true sharing of the same element. Instead: thread writes w[i] for
	// its own i, neighbours read w[i+1] — classic read/write false
	// sharing on adjacent elements.
	src := `
#define N 8
double w[N];
double out[N];
#pragma omp parallel for schedule(static,4) num_threads(2)
for (i = 0; i < N; i++) {
    w[i] = 1.0;
    out[i] = w[7 - i];
}
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.FSCases == 0 {
		t.Fatal("expected FS from reads of remotely modified line")
	}
}

func TestFSChunkMonotonicityLinReg(t *testing.T) {
	kern, err := kernels.LinReg(64, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, chunk := range []int64{1, 2, 4, 8} {
		res, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.FSCases > prev {
			t.Fatalf("FS not non-increasing in chunk: %d then %d", prev, res.FSCases)
		}
		prev = res.FSCases
	}
	if prev != 0 {
		t.Fatalf("chunk 8 (320B = 5 lines) should eliminate FS, got %d", prev)
	}
}

func TestHeatDensityNearSevenEighths(t *testing.T) {
	kern, err := kernels.Heat(16, 512)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	density := res.FSPerIteration()
	// Eight consecutive doubles per line, eight threads writing them in
	// lockstep: ~7 of 8 stores hit a remotely modified line.
	if density < 0.8 || density > 0.92 {
		t.Fatalf("heat FS density = %.3f, want ~0.875", density)
	}
}

func TestMESIModeCountsInvalidations(t *testing.T) {
	src := `
#define N 32
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	nest := loadNest(t, src)
	paper, err := Analyze(nest, Options{Machine: machine.Paper48(), Counting: CountPaperPhi})
	if err != nil {
		t.Fatal(err)
	}
	mesi, err := Analyze(nest, Options{Machine: machine.Paper48(), Counting: CountMESI})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Invalidations != 0 {
		t.Fatalf("paper mode invalidations = %d", paper.Invalidations)
	}
	if mesi.Invalidations == 0 {
		t.Fatal("MESI mode should record invalidations")
	}
	if paper.FSCases == 0 || mesi.FSCases == 0 {
		t.Fatal("both modes should detect FS")
	}
}

func TestSetAssociativeAblationAgrees(t *testing.T) {
	kern, err := kernels.LinReg(64, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	assoc, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1, Associativity: 16})
	if err != nil {
		t.Fatal(err)
	}
	// For working sets far below capacity the two cache-state organizations
	// must agree closely (the paper's justification for modeling
	// fully-associative caches).
	ratio := float64(assoc.FSCases) / float64(full.FSCases)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("set-assoc FS %d vs fully-assoc %d (ratio %.3f)", assoc.FSCases, full.FSCases, ratio)
	}
}

func TestTinyStackDepthDropsState(t *testing.T) {
	// Each thread writes its own slot of the shared w line and then
	// streams through a scratch buffer. With an unbounded stack the w
	// line stays Modified between iterations and the neighbour's next
	// write is an FS case; with a one-line stack the scratch write evicts
	// (writes back) the w line first, so ϕ finds nothing — capacity
	// changes what the model can see, which is the point of the paper's
	// stack-depth parameter.
	src := `
#define N 8
#define K 64
double w[N];
double buf[N][K];
#pragma omp parallel for schedule(static,1) num_threads(2)
for (j = 0; j < N; j++)
  for (i = 0; i < K; i++) {
    w[j] = 1.0;
    buf[j][i] = 2.0;
  }
`
	nest := loadNest(t, src)
	deep, err := Analyze(nest, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Analyze(nest, Options{Machine: machine.Paper48(), StackDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.FSCases >= deep.FSCases {
		t.Fatalf("stack depth 1 should reduce detected FS: %d vs %d", shallow.FSCases, deep.FSCases)
	}
	if shallow.CapacityEvictions == 0 {
		t.Fatal("expected capacity evictions with depth 1")
	}
}

func TestChunkRunsTotalInnerParallel(t *testing.T) {
	// 6 outer instances × ceil(30/(2*3)) = 6 × 5 = 30 chunk runs.
	src := `
#define M 6
#define N 30
double a[M][N];
for (j = 0; j < M; j++)
  #pragma omp parallel for schedule(static,3) num_threads(2)
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.ChunkRunsTotal != 30 {
		t.Fatalf("chunk runs = %d, want 30", res.ChunkRunsTotal)
	}
}

func TestPerRunSeriesMonotoneAndComplete(t *testing.T) {
	src := `
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48(), RecordPerRun: true})
	if int64(len(res.PerRun)) != res.ChunkRunsEvaluated {
		t.Fatalf("series length %d != runs %d", len(res.PerRun), res.ChunkRunsEvaluated)
	}
	if res.ChunkRunsEvaluated != res.ChunkRunsTotal {
		t.Fatalf("evaluated %d != total %d", res.ChunkRunsEvaluated, res.ChunkRunsTotal)
	}
	for i := 1; i < len(res.PerRun); i++ {
		if res.PerRun[i] < res.PerRun[i-1] {
			t.Fatal("cumulative series must be non-decreasing")
		}
	}
	if res.PerRun[len(res.PerRun)-1] != res.FSCases {
		t.Fatal("final series value must equal the total")
	}
}

func TestMaxChunkRunsTruncates(t *testing.T) {
	src := `
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48(), MaxChunkRuns: 10})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.ChunkRunsEvaluated != 10 {
		t.Fatalf("evaluated %d runs, want 10", res.ChunkRunsEvaluated)
	}
	if len(res.PerRun) != 10 {
		t.Fatalf("series = %d points", len(res.PerRun))
	}
}

func TestPredictAccuracyUniformPattern(t *testing.T) {
	src := `
#define N 4096
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	nest := loadNest(t, src)
	full, err := Analyze(nest, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(nest, Options{Machine: machine.Paper48()}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rel := float64(pred.PredictedFS-full.FSCases) / float64(full.FSCases)
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("prediction %d vs full %d (%.2f%% error)", pred.PredictedFS, full.FSCases, rel*100)
	}
	if pred.Fit.R2 < 0.999 {
		t.Fatalf("R2 = %f", pred.Fit.R2)
	}
	if pred.IterationsEvaluated >= full.Iterations {
		t.Fatal("prediction should evaluate fewer iterations than the full model")
	}
}

func TestPredictErrors(t *testing.T) {
	src := `
#define N 64
double a[N];
#pragma omp parallel for num_threads(2)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	if _, err := Predict(nest, Options{Machine: machine.Paper48()}, 1); err == nil {
		t.Fatal("sampleRuns < 2 must error")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	seq := loadNest(t, `
double a[8];
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	if _, err := Analyze(seq, Options{Machine: machine.Paper48()}); err == nil ||
		!strings.Contains(err.Error(), "no parallel loop") {
		t.Fatal("sequential nest must be rejected")
	}

	par := loadNest(t, `
double a[8];
#pragma omp parallel for
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	if _, err := Analyze(par, Options{Machine: machine.Paper48(), NumThreads: 65}); err == nil ||
		!strings.Contains(err.Error(), "64") {
		t.Fatal(">64 threads must be rejected")
	}
}

func TestNonAffineRefsReported(t *testing.T) {
	src := `
#define N 16
double a[N][N];
double b[N][N];
#pragma omp parallel for num_threads(2)
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    b[i][j] = a[i][i * j];
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if len(res.SkippedRefs) != 1 {
		t.Fatalf("skipped = %v", res.SkippedRefs)
	}
}

func TestDefaultsResolution(t *testing.T) {
	// Pragma-specified threads/chunk hold when options leave them unset.
	src := `
#define N 32
double a[N];
#pragma omp parallel for schedule(static,2) num_threads(4)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.Plan.NumThreads != 4 || res.Plan.Chunk != 2 {
		t.Fatalf("pragma defaults not honored: %+v", res.Plan)
	}
	// Explicit options override the pragma.
	res = analyze(t, src, Options{Machine: machine.Paper48(), NumThreads: 2, Chunk: 8})
	if res.Plan.NumThreads != 2 || res.Plan.Chunk != 8 {
		t.Fatalf("options should override pragma: %+v", res.Plan)
	}
}

func TestCountingModeString(t *testing.T) {
	if CountPaperPhi.String() != "paper-phi" || CountMESI.String() != "mesi" {
		t.Fatal("mode names wrong")
	}
}

// The FS total must not depend on which thread id observes which chunk —
// analyzing twice must be deterministic.
func TestDeterminism(t *testing.T) {
	kern, err := kernels.DFT(96)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 6, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 6, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.FSCases != b.FSCases || a.Accesses != b.Accesses {
		t.Fatal("analysis is not deterministic")
	}
}

func TestVictimAttribution(t *testing.T) {
	// Writes to w[] false-share; reads of r[] do not. Attribution must
	// point the finger exclusively at w.
	src := `
#define N 64
double w[N];
double r[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) w[i] = r[i];
`
	res := analyze(t, src, Options{Machine: machine.Paper48()})
	if res.FSCases == 0 {
		t.Fatal("expected FS")
	}
	victims := res.Victims()
	if len(victims) != 1 || victims[0].Symbol != "w" || !victims[0].Write {
		t.Fatalf("victims = %+v", victims)
	}
	if victims[0].FSCases != res.FSCases {
		t.Fatalf("attribution %d != total %d", victims[0].FSCases, res.FSCases)
	}
	syms := res.VictimSymbols()
	if len(syms) != 1 || syms[0].Symbol != "w" {
		t.Fatalf("victim symbols = %+v", syms)
	}
}

func TestVictimAttributionSumsToTotal(t *testing.T) {
	kern, err := kernels.LinReg(64, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range res.ByRef {
		sum += a.FSCases
	}
	if sum != res.FSCases {
		t.Fatalf("attribution sum %d != total %d", sum, res.FSCases)
	}
	// All FS must land on the accumulator struct, none on the points.
	for _, v := range res.VictimSymbols() {
		if v.Symbol != "tid_args" {
			t.Fatalf("unexpected victim %q", v.Symbol)
		}
	}
}

// TestPerRunDifferencesConstant is the property behind the paper's Fig. 6
// and Section III-E: for a uniform access pattern, the FS increment per
// chunk run is constant after warm-up, which is exactly what makes linear
// extrapolation sound.
func TestPerRunDifferencesConstant(t *testing.T) {
	src := `
#define N 2048
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	// Eight threads at chunk 1 cover exactly one 64-byte line per chunk
	// run, so the steady-state increment is the same every run.
	res := analyze(t, src, Options{Machine: machine.Paper48(), RecordPerRun: true})
	if len(res.PerRun) < 10 {
		t.Fatalf("runs = %d", len(res.PerRun))
	}
	// Skip the first (cold) run; every subsequent increment must be equal.
	inc := res.PerRun[2] - res.PerRun[1]
	for i := 3; i < len(res.PerRun); i++ {
		if got := res.PerRun[i] - res.PerRun[i-1]; got != inc {
			t.Fatalf("run %d increment %d != %d", i, got, inc)
		}
	}
}

// TestDynamicScheduleModeledAsStatic documents the paper's assumption:
// dynamic and guided schedules parse but are modeled with the static
// round-robin distribution (Section III: "chunks of a loop are
// distributed to threads in a round-robin fashion").
func TestDynamicScheduleModeledAsStatic(t *testing.T) {
	mk := func(kind string) string {
		return `
#define N 128
double a[N];
#pragma omp parallel for schedule(` + kind + `,1) num_threads(4)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	}
	static := analyze(t, mk("static"), Options{Machine: machine.Paper48()})
	dynamic := analyze(t, mk("dynamic"), Options{Machine: machine.Paper48()})
	guided := analyze(t, mk("guided"), Options{Machine: machine.Paper48()})
	if dynamic.FSCases != static.FSCases || guided.FSCases != static.FSCases {
		t.Fatalf("schedule kinds modeled differently: %d / %d / %d",
			static.FSCases, dynamic.FSCases, guided.FSCases)
	}
}

func TestHotLines(t *testing.T) {
	src := `
#define N 32
double w[N];
double r[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) w[i] = r[i];
`
	nest := loadNest(t, src)
	res, err := Analyze(nest, Options{Machine: machine.Paper48(), TrackHotLines: true})
	if err != nil {
		t.Fatal(err)
	}
	hot := res.HotLines(nest, 64, 10)
	if len(hot) != 4 { // 32 doubles = 4 lines, all contended
		t.Fatalf("hot lines = %d: %+v", len(hot), hot)
	}
	var sum int64
	for _, h := range hot {
		if h.Symbol != "w" {
			t.Fatalf("hot line attributed to %q", h.Symbol)
		}
		if h.Offset%64 != 0 || h.Offset >= 32*8 {
			t.Fatalf("offset = %d", h.Offset)
		}
		sum += h.FSCases
	}
	if sum != res.FSCases {
		t.Fatalf("hot line sum %d != total %d", sum, res.FSCases)
	}
	// Top-n truncation and sorting.
	top := res.HotLines(nest, 64, 2)
	if len(top) != 2 || top[0].FSCases < top[1].FSCases {
		t.Fatalf("top-2 = %+v", top)
	}
	// Without the option, no line data.
	res2, err := Analyze(nest, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.HotLines(nest, 64, 10) != nil {
		t.Fatal("hot lines tracked without the option")
	}
}
