package experiments

import (
	"context"
	"fmt"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/sweep"
)

// PredictionRow is one thread-count row of Tables IV–VI: the prediction
// model (linear regression over a short prefix of chunk runs) against the
// full model.
type PredictionRow struct {
	Threads int

	PredFS  int64 // predicted FS cases, FS-inducing chunk
	PredNFS int64 // predicted FS cases, FS-free chunk
	PredPct float64

	ModelFS  int64
	ModelNFS int64
	ModelPct float64

	// R2FS is the goodness of the linear fit on the FS-chunk series
	// (paper Fig. 6 argues it should be ~1).
	R2FS float64
	// SampledIterations counts the innermost iterations the predictor
	// evaluated (its cost), versus FullIterations for the full model.
	SampledIterations int64
	FullIterations    int64
}

// PredictionTableResult holds one of Tables IV–VI.
type PredictionTableResult struct {
	Kernel        string
	FSChunk       int64
	NFSChunk      int64
	ChunkRuns     int64 // sample size fed to the regression
	Rows          []PredictionRow
	Normalization float64
}

// PredictionTable reproduces Table IV/V/VI for the named kernel.
func PredictionTable(cfg Config, kernel string) (*PredictionTableResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kc, err := cfg.caseByName(kernel)
	if err != nil {
		return nil, err
	}
	res := &PredictionTableResult{
		Kernel: kc.name, FSChunk: kc.fsChunk, NFSChunk: kc.nfsChunk, ChunkRuns: kc.predRuns,
	}
	res.Rows = make([]PredictionRow, len(cfg.Threads))
	plans := make([]sched.Plan, len(cfg.Threads))
	kerns := make([]*kernels.Kernel, len(cfg.Threads))

	err = sweep.ForEach(cfg.ctx(), len(cfg.Threads), cfg.Jobs, func(_ context.Context, i int) error {
		threads := cfg.Threads[i]
		kern, err := kc.load(cfg, threads)
		if err != nil {
			return err
		}
		row := PredictionRow{Threads: threads}

		fsOpts := fsmodel.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: kc.fsChunk, Counting: cfg.Counting,
			Eval: cfg.Eval, Extrapolate: cfg.Extrapolate}
		nfsOpts := fsmodel.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: kc.nfsChunk, Counting: cfg.Counting,
			Eval: cfg.Eval, Extrapolate: cfg.Extrapolate}

		fsFull, err := fsmodel.Analyze(kern.Nest, fsOpts)
		if err != nil {
			return fmt.Errorf("experiments: %s threads=%d: %w", kc.name, threads, err)
		}
		nfsFull, err := fsmodel.Analyze(kern.Nest, nfsOpts)
		if err != nil {
			return err
		}
		row.ModelFS = fsFull.FSCases
		row.ModelNFS = nfsFull.FSCases
		row.FullIterations = fsFull.Iterations

		fsPred, err := fsmodel.Predict(kern.Nest, fsOpts, kc.predRuns)
		if err != nil {
			return err
		}
		nfsPred, err := fsmodel.Predict(kern.Nest, nfsOpts, kc.predRuns)
		if err != nil {
			return err
		}
		row.PredFS = fsPred.PredictedFS
		row.PredNFS = nfsPred.PredictedFS
		row.R2FS = fsPred.Fit.R2
		row.SampledIterations = fsPred.IterationsEvaluated

		res.Rows[i], plans[i], kerns[i] = row, fsFull.Plan, kern
		return nil
	})
	if err != nil {
		return nil, err
	}

	norm, err := normalizationFor(cfg, kerns[0], plans[0], res.Rows[0].ModelFS)
	if err != nil {
		return nil, err
	}
	res.Normalization = norm
	for i := range res.Rows {
		res.Rows[i].ModelPct = float64(res.Rows[i].ModelFS-res.Rows[i].ModelNFS) / norm
		res.Rows[i].PredPct = float64(res.Rows[i].PredFS-res.Rows[i].PredNFS) / norm
	}
	return res, nil
}
