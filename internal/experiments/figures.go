package experiments

import (
	"context"
	"fmt"

	"repro/internal/fsmodel"
	"repro/internal/linreg"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// ChunkSweepPoint is one point of Figure 2.
type ChunkSweepPoint struct {
	Chunk           int64
	Seconds         float64
	CoherenceMisses int64
	ModelFSCases    int64
}

// ChunkSweepResult holds Figure 2: execution time of the linear-regression
// kernel versus schedule chunk size.
type ChunkSweepResult struct {
	Kernel  string
	Threads int
	Points  []ChunkSweepPoint
	// ImprovementPct is (t(chunk_min) - t(chunk_max)) / t(chunk_min); the
	// paper reports up to ~30%.
	ImprovementPct float64
}

// Fig2ChunkSweep reproduces Figure 2: the linear-regression kernel's
// simulated execution time for chunk sizes 1..30 at a fixed thread count
// (8, matching the spirit of the paper's tuning example).
func Fig2ChunkSweep(cfg Config, threads int, chunks []int64) (*ChunkSweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = 8
	}
	if len(chunks) == 0 {
		for c := int64(1); c <= 30; c++ {
			chunks = append(chunks, c)
		}
	}
	kern, err := kernelsLinReg(cfg, threads)
	if err != nil {
		return nil, err
	}
	res := &ChunkSweepResult{Kernel: "linreg", Threads: threads}
	points, err := sweep.Run(cfg.ctx(), len(chunks), cfg.Jobs, func(_ context.Context, i int) (ChunkSweepPoint, error) {
		chunk := chunks[i]
		st, err := sim.Run(kern.Nest, sim.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: chunk})
		if err != nil {
			return ChunkSweepPoint{}, fmt.Errorf("experiments: fig2 chunk=%d: %w", chunk, err)
		}
		fs, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
			Machine: cfg.Machine, NumThreads: threads, Chunk: chunk, Counting: cfg.Counting,
			Eval: cfg.Eval, Extrapolate: cfg.Extrapolate,
		})
		if err != nil {
			return ChunkSweepPoint{}, err
		}
		return ChunkSweepPoint{
			Chunk: chunk, Seconds: st.Seconds, CoherenceMisses: st.CoherenceMisses, ModelFSCases: fs.FSCases,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	first := res.Points[0].Seconds
	best := first
	for _, p := range res.Points {
		if p.Seconds < best {
			best = p.Seconds
		}
	}
	if first > 0 {
		res.ImprovementPct = (first - best) / first
	}
	return res, nil
}

// LinearitySeries is one chunk size's cumulative FS-vs-chunk-run series of
// Figure 6, with its least-squares fit.
type LinearitySeries struct {
	Chunk  int64
	PerRun []int64 // cumulative FS cases after each chunk run
	Fit    linreg.Model
}

// LinearityResult holds Figure 6.
type LinearityResult struct {
	Kernel  string
	Threads int
	Series  []LinearitySeries
}

// Fig6Linearity reproduces Figure 6: FS cases grow linearly with the
// number of chunk runs, for both the FS-inducing and FS-free chunk sizes
// of the heat kernel.
func Fig6Linearity(cfg Config, kernel string, threads int, maxRuns int64) (*LinearityResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kc, err := cfg.caseByName(kernel)
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = 8
	}
	kern, err := kc.load(cfg, threads)
	if err != nil {
		return nil, err
	}
	res := &LinearityResult{Kernel: kc.name, Threads: threads}
	chunkAxis := []int64{kc.fsChunk, kc.nfsChunk}
	series, err := sweep.Run(cfg.ctx(), len(chunkAxis), cfg.Jobs, func(_ context.Context, i int) (LinearitySeries, error) {
		chunk := chunkAxis[i]
		opts := fsmodel.Options{
			Machine: cfg.Machine, NumThreads: threads, Chunk: chunk,
			Counting: cfg.Counting, RecordPerRun: true, MaxChunkRuns: maxRuns,
			Eval: cfg.Eval,
		}
		r, err := fsmodel.Analyze(kern.Nest, opts)
		if err != nil {
			return LinearitySeries{}, err
		}
		vals := make([]float64, len(r.PerRun))
		for j, v := range r.PerRun {
			vals[j] = float64(v)
		}
		fit, err := linreg.FitPrefix(vals, len(vals))
		if err != nil {
			return LinearitySeries{}, fmt.Errorf("experiments: fig6 chunk=%d: %w", chunk, err)
		}
		return LinearitySeries{Chunk: chunk, PerRun: r.PerRun, Fit: fit}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Series = series
	return res, nil
}

// SummaryRow is one thread count of Figures 8–9: the three estimates of
// the FS effect side by side.
type SummaryRow struct {
	Threads   int
	Measured  float64
	Modeled   float64
	Predicted float64
}

// SummaryResult holds Figure 8 (heat) or Figure 9 (DFT).
type SummaryResult struct {
	Kernel string
	Rows   []SummaryRow
}

// FigSummary reproduces Figure 8/9 by combining the kernel's measured
// table with its prediction table.
func FigSummary(cfg Config, kernel string) (*SummaryResult, error) {
	tab, err := Table(cfg, kernel)
	if err != nil {
		return nil, err
	}
	pred, err := PredictionTable(cfg, kernel)
	if err != nil {
		return nil, err
	}
	if len(tab.Rows) != len(pred.Rows) {
		return nil, fmt.Errorf("experiments: summary row mismatch (%d vs %d)", len(tab.Rows), len(pred.Rows))
	}
	res := &SummaryResult{Kernel: kernel}
	for i := range tab.Rows {
		res.Rows = append(res.Rows, SummaryRow{
			Threads:   tab.Rows[i].Threads,
			Measured:  tab.Rows[i].MeasuredPct,
			Modeled:   tab.Rows[i].ModeledPct,
			Predicted: pred.Rows[i].PredPct,
		})
	}
	return res, nil
}
