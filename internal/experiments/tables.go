package experiments

import (
	"context"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// MeasuredRow is one thread-count row of Tables I–III.
type MeasuredRow struct {
	Threads int

	// Simulated execution ("measured" side of Equation 5).
	TimeFS      float64 // seconds, FS-inducing chunk
	TimeNFS     float64 // seconds, FS-free chunk
	MeasuredPct float64

	// Model side.
	NFS        int64 // N_fs_model
	NNFS       int64 // N_nfs_model
	ModeledPct float64

	// Simulator coherence misses, for diagnostics (the mechanism behind
	// the time difference).
	CoherenceMissesFS  int64
	CoherenceMissesNFS int64
}

// TableResult holds one of Tables I–III.
type TableResult struct {
	Kernel   string
	FSChunk  int64
	NFSChunk int64
	Rows     []MeasuredRow
	// Normalization is Ñ_fs of Equation 5: the FS count corresponding to
	// 100% of the loop's modeled execution time, fixed at the first
	// thread count and reused across rows (see EXPERIMENTS.md).
	Normalization float64
}

// Table reproduces Table I/II/III for the named kernel ("heat", "dft",
// "linreg").
func Table(cfg Config, kernel string) (*TableResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kc, err := cfg.caseByName(kernel)
	if err != nil {
		return nil, err
	}
	res := &TableResult{Kernel: kc.name, FSChunk: kc.fsChunk, NFSChunk: kc.nfsChunk}
	res.Rows = make([]MeasuredRow, len(cfg.Threads))
	plans := make([]sched.Plan, len(cfg.Threads))
	kerns := make([]*kernels.Kernel, len(cfg.Threads))

	// Rows are independent given the kernel parameters, so evaluate them
	// on the sweep pool; percentages that need the shared Equation-5
	// normalization are filled in afterwards.
	err = sweep.ForEach(cfg.ctx(), len(cfg.Threads), cfg.Jobs, func(_ context.Context, i int) error {
		row, plan, kern, err := tableRow(cfg, kc, cfg.Threads[i])
		if err != nil {
			return fmt.Errorf("experiments: %s threads=%d: %w", kc.name, cfg.Threads[i], err)
		}
		res.Rows[i], plans[i], kerns[i] = row, plan, kern
		return nil
	})
	if err != nil {
		return nil, err
	}

	norm, err := normalizationFor(cfg, kerns[0], plans[0], res.Rows[0].NFS)
	if err != nil {
		return nil, err
	}
	res.Normalization = norm
	for i := range res.Rows {
		res.Rows[i].ModeledPct = float64(res.Rows[i].NFS-res.Rows[i].NNFS) / norm
	}
	return res, nil
}

// tableRow computes one row's counts and simulated times (everything
// except the normalization-dependent modeled percentage).
func tableRow(cfg Config, kc kernelCase, threads int) (MeasuredRow, sched.Plan, *kernels.Kernel, error) {
	kern, err := kc.load(cfg, threads)
	if err != nil {
		return MeasuredRow{}, sched.Plan{}, nil, err
	}
	row := MeasuredRow{Threads: threads}

	fsRes, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
		Machine: cfg.Machine, NumThreads: threads, Chunk: kc.fsChunk, Counting: cfg.Counting,
		Eval: cfg.Eval, Extrapolate: cfg.Extrapolate,
	})
	if err != nil {
		return row, sched.Plan{}, nil, err
	}
	nfsRes, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
		Machine: cfg.Machine, NumThreads: threads, Chunk: kc.nfsChunk, Counting: cfg.Counting,
		Eval: cfg.Eval, Extrapolate: cfg.Extrapolate,
	})
	if err != nil {
		return row, sched.Plan{}, nil, err
	}
	row.NFS = fsRes.FSCases
	row.NNFS = nfsRes.FSCases

	simFS, err := sim.Run(kern.Nest, sim.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: kc.fsChunk})
	if err != nil {
		return row, sched.Plan{}, nil, err
	}
	simNFS, err := sim.Run(kern.Nest, sim.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: kc.nfsChunk})
	if err != nil {
		return row, sched.Plan{}, nil, err
	}
	row.TimeFS = simFS.Seconds
	row.TimeNFS = simNFS.Seconds
	row.CoherenceMissesFS = simFS.CoherenceMisses
	row.CoherenceMissesNFS = simNFS.CoherenceMisses
	if simFS.Seconds > 0 {
		row.MeasuredPct = (simFS.Seconds - simNFS.Seconds) / simFS.Seconds
	}
	return row, fsRes.Plan, kern, nil
}

// normalizationFor computes Ñ_fs: Equation 1's Total_c for the
// FS-suffering loop (base cost models plus the FS term), expressed in
// units of one coherence penalty, so that (N_fs − N_nfs)/Ñ_fs is the
// share of execution time attributable to false sharing. It is evaluated
// once per kernel (at the table's first thread count) and reused for the
// other rows, matching the paper's per-kernel normalization (Tables I–VI
// show modeled percentages proportional to the raw FS counts).
func normalizationFor(cfg Config, kern *kernels.Kernel, plan sched.Plan, nfs int64) (float64, error) {
	base, err := costmodel.Estimate(kern.Nest, cfg.Machine, plan)
	if err != nil {
		return 0, err
	}
	coher := float64(cfg.Machine.CoherenceLatency)
	totalWork := base.PerIter()*float64(base.TotalIterations) + base.ParallelOverhead
	return (totalWork + float64(nfs)*coher) / coher, nil
}
