package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fsmodel"
)

func quick(t *testing.T) Config {
	t.Helper()
	cfg := QuickConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Threads = []int{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero threads should fail")
	}
	bad = cfg
	bad.Threads = []int{100}
	if err := bad.Validate(); err == nil {
		t.Fatal("threads beyond cores should fail")
	}
	bad = cfg
	bad.Machine = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil machine should fail")
	}
	bad = cfg
	bad.Threads = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty thread list should fail")
	}
}

func TestCaseLookup(t *testing.T) {
	cfg := quick(t)
	for _, name := range []string{"heat", "dft", "linreg"} {
		if _, err := cfg.caseByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := cfg.caseByName("zzz"); err == nil {
		t.Fatal("unknown kernel should fail")
	}
	if _, err := Table(cfg, "zzz"); err == nil {
		t.Fatal("Table with unknown kernel should fail")
	}
}

// TestTableHeatShape reproduces Table I's qualitative content: modeled and
// measured FS percentages agree within a band and are roughly flat across
// thread counts.
func TestTableHeatShape(t *testing.T) {
	res, err := Table(quick(t), "heat")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TimeFS <= r.TimeNFS {
			t.Fatalf("threads=%d: FS run (%f) not slower than non-FS (%f)", r.Threads, r.TimeFS, r.TimeNFS)
		}
		if r.MeasuredPct <= 0.2 || r.ModeledPct <= 0.2 {
			t.Fatalf("threads=%d: FS effect too small (measured %.2f, modeled %.2f)",
				r.Threads, r.MeasuredPct, r.ModeledPct)
		}
		if diff := r.MeasuredPct - r.ModeledPct; diff < -0.35 || diff > 0.35 {
			t.Fatalf("threads=%d: measured %.2f vs modeled %.2f diverge",
				r.Threads, r.MeasuredPct, r.ModeledPct)
		}
		if r.NFS <= r.NNFS {
			t.Fatalf("threads=%d: N_fs (%d) not above N_nfs (%d)", r.Threads, r.NFS, r.NNFS)
		}
	}
	// Flat across threads: modeled percentages within 30% of each other.
	first := res.Rows[0].ModeledPct
	for _, r := range res.Rows {
		if r.ModeledPct < first*0.7 || r.ModeledPct > first*1.3 {
			t.Fatalf("heat modeled pct not flat: %f vs %f", r.ModeledPct, first)
		}
	}
}

// TestTableLinRegDivergence reproduces Table III's key (negative) finding:
// the modeled percentage decays with thread count while the measured one
// stays roughly flat.
func TestTableLinRegDivergence(t *testing.T) {
	res, err := Table(quick(t), "linreg")
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.ModeledPct >= first.ModeledPct*0.7 {
		t.Fatalf("modeled pct should decay: %f -> %f", first.ModeledPct, last.ModeledPct)
	}
	if last.NFS >= first.NFS {
		t.Fatalf("modeled FS count should decay: %d -> %d", first.NFS, last.NFS)
	}
	if last.MeasuredPct < first.MeasuredPct*0.5 {
		t.Fatalf("measured pct should stay roughly flat: %f -> %f", first.MeasuredPct, last.MeasuredPct)
	}
}

// TestDFTAboveHeat reproduces the ordering of Tables I and II: DFT suffers
// more than heat.
func TestDFTAboveHeat(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{4}
	heat, err := Table(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	dft, err := Table(cfg, "dft")
	if err != nil {
		t.Fatal(err)
	}
	if dft.Rows[0].ModeledPct <= heat.Rows[0].ModeledPct {
		t.Fatalf("DFT modeled (%f) should exceed heat (%f)",
			dft.Rows[0].ModeledPct, heat.Rows[0].ModeledPct)
	}
}

func TestPredictionTableAccuracy(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2, 4}
	res, err := PredictionTable(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.ModelFS == 0 {
			t.Fatalf("threads=%d: model found no FS", r.Threads)
		}
		rel := float64(r.PredFS-r.ModelFS) / float64(r.ModelFS)
		if rel < -0.25 || rel > 0.25 {
			t.Fatalf("threads=%d: prediction %d vs model %d (%.0f%% off)",
				r.Threads, r.PredFS, r.ModelFS, rel*100)
		}
		if r.SampledIterations >= r.FullIterations {
			t.Fatalf("threads=%d: prediction did not save work", r.Threads)
		}
		if r.R2FS < 0.99 {
			t.Fatalf("threads=%d: R2 = %f", r.Threads, r.R2FS)
		}
	}
}

func TestFig2ChunkSweepShape(t *testing.T) {
	cfg := quick(t)
	res, err := Fig2ChunkSweep(cfg, 8, []int64{1, 2, 4, 8, 16, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Seconds >= first.Seconds {
		t.Fatalf("time should fall with chunk size: %f -> %f", first.Seconds, last.Seconds)
	}
	if res.ImprovementPct < 0.1 {
		t.Fatalf("improvement = %f, want >= 10%% (paper reports ~30%%)", res.ImprovementPct)
	}
	if last.ModelFSCases >= first.ModelFSCases {
		t.Fatal("model FS cases should fall with chunk size")
	}
}

func TestFig6Linearity(t *testing.T) {
	res, err := Fig6Linearity(quick(t), "heat", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	fsSeries := res.Series[0]
	if fsSeries.Fit.R2 < 0.999 {
		t.Fatalf("FS-chunk series R2 = %f, want ~1 (paper Fig. 6)", fsSeries.Fit.R2)
	}
	if fsSeries.Fit.A <= 0 {
		t.Fatalf("slope = %f", fsSeries.Fit.A)
	}
}

func TestFigSummaryCombines(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2, 4}
	res, err := FigSummary(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Measured <= 0 || r.Modeled <= 0 || r.Predicted <= 0 {
			t.Fatalf("summary row degenerate: %+v", r)
		}
		// Modeled and predicted must agree closely (same model, sampled).
		if rel := (r.Predicted - r.Modeled) / r.Modeled; rel < -0.3 || rel > 0.3 {
			t.Fatalf("predicted %.3f vs modeled %.3f", r.Predicted, r.Modeled)
		}
	}
}

func TestRenderers(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2}

	var buf bytes.Buffer
	tab, err := Table(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heat kernel") || !strings.Contains(buf.String(), "%") {
		t.Fatalf("table render:\n%s", buf.String())
	}

	buf.Reset()
	pred, err := PredictionTable(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Predicted vs. modeled") {
		t.Fatalf("prediction render:\n%s", buf.String())
	}

	buf.Reset()
	sweep, err := Fig2ChunkSweep(cfg, 4, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement") {
		t.Fatalf("sweep render:\n%s", buf.String())
	}

	buf.Reset()
	lin, err := Fig6Linearity(cfg, "heat", 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := lin.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "R2") {
		t.Fatalf("linearity render:\n%s", buf.String())
	}

	buf.Reset()
	sum, err := FigSummary(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "measured") {
		t.Fatalf("summary render:\n%s", buf.String())
	}
}

func TestMESIModeRuns(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2}
	cfg.Counting = fsmodel.CountMESI
	res, err := Table(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].NFS == 0 {
		t.Fatal("MESI counting found no FS")
	}
}

func TestCountHelper(t *testing.T) {
	for _, c := range []struct {
		v    int64
		want string
	}{{5, "5"}, {9999, "9999"}, {10000, "10K"}, {2_500_000, "2500K"}, {10_000_000, "10M"}} {
		if got := count(c.v); got != c.want {
			t.Errorf("count(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestExportFormats(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2}
	tab, err := Table(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Export(&buf, tab, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + one row
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "kernel,threads,") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "heat,2,1,64,") {
		t.Fatalf("csv row = %q", lines[1])
	}

	buf.Reset()
	if err := Export(&buf, tab, "json"); err != nil {
		t.Fatal(err)
	}
	var decoded TableResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if decoded.Kernel != "heat" || len(decoded.Rows) != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}

	buf.Reset()
	if err := Export(&buf, tab, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heat kernel") {
		t.Fatal("text export wrong")
	}
	if err := Export(&buf, tab, "yaml"); err == nil {
		t.Fatal("unknown format should error")
	}
}

func TestCSVAllResultTypes(t *testing.T) {
	cfg := quick(t)
	cfg.Threads = []int{2}
	var buf bytes.Buffer

	pred, err := PredictionTable(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.CSV(&buf); err != nil || !strings.Contains(buf.String(), "pred_fs") {
		t.Fatalf("prediction csv: %v\n%s", err, buf.String())
	}

	buf.Reset()
	sweep, err := Fig2ChunkSweep(cfg, 4, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.CSV(&buf); err != nil || strings.Count(buf.String(), "\n") != 3 {
		t.Fatalf("sweep csv: %v\n%s", err, buf.String())
	}

	buf.Reset()
	lin, err := Fig6Linearity(cfg, "heat", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := lin.CSV(&buf); err != nil || !strings.Contains(buf.String(), "cumulative_fs") {
		t.Fatalf("linearity csv: %v", err)
	}

	buf.Reset()
	sum, err := FigSummary(cfg, "heat")
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.CSV(&buf); err != nil || !strings.Contains(buf.String(), "predicted_pct") {
		t.Fatalf("summary csv: %v", err)
	}
}

// TestLineSizeSweep: with chunk 4 over 40-byte structs (160 B per chunk),
// 32-byte lines fit inside one chunk (zero FS) while 256-byte lines span
// multiple threads' chunks (massive FS) — and the model must equal the
// simulator's coherence misses at every point.
func TestLineSizeSweep(t *testing.T) {
	cfg := quick(t)
	res, err := LineSizeSweep(cfg, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].FSCases != 0 {
		t.Fatalf("32-byte lines: FS = %d, want 0", res.Points[0].FSCases)
	}
	last := res.Points[len(res.Points)-1]
	if last.FSCases <= res.Points[1].FSCases*10 {
		t.Fatalf("256-byte lines should explode FS: %d vs %d", last.FSCases, res.Points[1].FSCases)
	}
	for _, p := range res.Points {
		if p.FSCases != p.CoherenceMisses {
			t.Fatalf("line %d: model %d != sim %d", p.LineSize, p.FSCases, p.CoherenceMisses)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil || !strings.Contains(buf.String(), "line size") {
		t.Fatalf("render: %v", err)
	}
	buf.Reset()
	if err := res.CSV(&buf); err != nil || !strings.Contains(buf.String(), "line_size") {
		t.Fatalf("csv: %v", err)
	}
}

// TestModelingCost: the predictor's cost must not grow with the loop while
// the full model's does, and its error must stay small.
func TestModelingCost(t *testing.T) {
	cfg := quick(t)
	res, err := ModelingCost(cfg, 4, 10, [][2]int64{{8, 256}, {16, 512}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	small, big := res.Points[0], res.Points[1]
	if big.FullIterations <= small.FullIterations {
		t.Fatal("full model iterations should grow with the grid")
	}
	for _, p := range res.Points {
		if p.SampledIterations >= p.FullIterations {
			t.Fatalf("%dx%d: sampling did not save work", p.Rows, p.Cols)
		}
		if p.ErrorPct < -10 || p.ErrorPct > 10 {
			t.Fatalf("%dx%d: prediction error %.1f%%", p.Rows, p.Cols, p.ErrorPct)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil || !strings.Contains(buf.String(), "Modeling cost") {
		t.Fatalf("render: %v", err)
	}
	buf.Reset()
	if err := res.CSV(&buf); err != nil || !strings.Contains(buf.String(), "full_iterations") {
		t.Fatalf("csv: %v", err)
	}
}

// TestDriversDeterministicAcrossJobs renders the sweep-backed experiments
// under Jobs=1 and Jobs=8 and requires byte-identical output — the
// determinism contract of internal/sweep carried through every driver.
func TestDriversDeterministicAcrossJobs(t *testing.T) {
	cfg := quick(t)
	produce := func(jobs int) string {
		c := cfg
		c.Jobs = jobs
		var buf bytes.Buffer
		tab, err := Table(c, "heat")
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		pred, err := PredictionTable(c, "linreg")
		if err != nil {
			t.Fatal(err)
		}
		if err := pred.Render(&buf); err != nil {
			t.Fatal(err)
		}
		fig2, err := Fig2ChunkSweep(c, 4, []int64{1, 2, 4, 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := fig2.Render(&buf); err != nil {
			t.Fatal(err)
		}
		ls, err := LineSizeSweep(c, 4, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ls.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := produce(1)
	parallel := produce(8)
	if serial != parallel {
		t.Errorf("Jobs=1 and Jobs=8 outputs differ:\n--- Jobs=1 ---\n%s\n--- Jobs=8 ---\n%s", serial, parallel)
	}
}
