// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Tables I–III compare the measured false-sharing
// effect (from simulated execution with FS-inducing versus FS-free chunk
// sizes) against the model's estimate; Tables IV–VI compare the
// linear-regression prediction against the full model; Figure 2 is the
// chunk-size sweep of the linear-regression kernel; Figure 6 demonstrates
// the linearity of FS cases in chunk runs; Figures 8–9 summarize
// measured/modeled/predicted series for heat and DFT.
//
// "Measured" numbers come from the MESI machine simulator (the testbed
// substitute); every experiment is deterministic.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// Config parameterizes all experiments.
type Config struct {
	Machine *machine.Desc
	// Threads is the thread-count axis of the tables (paper: 2..48).
	Threads []int

	HeatRows, HeatCols        int64
	DFTN                      int64
	LinRegTasks, LinRegPoints int64

	// Prediction sample sizes (chunk runs), per Tables IV–VI.
	PredRunsHeat, PredRunsDFT, PredRunsLinReg int64

	// Counting selects the FS-detection semantics for the model.
	Counting fsmodel.CountingMode

	// Eval selects the model's evaluation pipeline (the -eval flag);
	// every pipeline produces identical numbers in every table/figure.
	Eval fsmodel.EvalMode

	// Extrapolate lets eligible uniform loops close their chunk-run
	// tails arithmetically once provably periodic (exactness is gated by
	// the fsmodel differential suite). Experiment outputs are unchanged.
	Extrapolate bool

	// Jobs bounds the worker pool every driver fans its analysis points
	// out on (the -j flag); <= 0 selects GOMAXPROCS. Output is identical
	// for every value.
	Jobs int

	// Ctx, when non-nil, bounds every experiment sweep: cancellation or an
	// expired deadline stops the sweep promptly and the experiment returns
	// ctx.Err() (the fsrepro -timeout flag). Nil means no deadline.
	Ctx context.Context
}

// ctx resolves the sweep context, defaulting to context.Background().
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig mirrors the paper's setup at reproduction scale.
func DefaultConfig() Config {
	return Config{
		Machine:        machine.Paper48(),
		Threads:        []int{2, 4, 8, 16, 24, 32, 40, 48},
		HeatRows:       kernels.DefaultHeatRows,
		HeatCols:       kernels.DefaultHeatCols,
		DFTN:           kernels.DefaultDFTN,
		LinRegTasks:    kernels.DefaultLinRegTasks,
		LinRegPoints:   kernels.DefaultLinRegPoints,
		PredRunsHeat:   20,
		PredRunsDFT:    50,
		PredRunsLinReg: 10,
		Counting:       fsmodel.CountPaperPhi,
	}
}

// QuickConfig is a scaled-down configuration for tests and fast smoke
// runs.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Threads = []int{2, 4, 8}
	cfg.HeatRows = 24
	cfg.HeatCols = 1024
	cfg.DFTN = 192
	cfg.LinRegTasks = 128
	cfg.LinRegPoints = 512
	cfg.PredRunsHeat = 8
	cfg.PredRunsDFT = 8
	cfg.PredRunsLinReg = 5
	return cfg
}

// Validate sanity-checks the configuration against the machine.
func (c Config) Validate() error {
	if c.Machine == nil {
		return fmt.Errorf("experiments: nil machine")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if len(c.Threads) == 0 {
		return fmt.Errorf("experiments: empty thread list")
	}
	for _, t := range c.Threads {
		if t < 1 || t > c.Machine.Cores {
			return fmt.Errorf("experiments: thread count %d outside 1..%d", t, c.Machine.Cores)
		}
	}
	return nil
}

// kernelCase binds a kernel to its paper chunk pair and prediction sample.
type kernelCase struct {
	name     string
	fsChunk  int64
	nfsChunk int64
	predRuns int64
	load     func(cfg Config, threads int) (*kernels.Kernel, error)
}

func (c Config) cases() []kernelCase {
	return []kernelCase{
		{
			name: "heat", fsChunk: kernels.HeatFSChunk, nfsChunk: kernels.HeatNFSChunk,
			predRuns: c.PredRunsHeat,
			load: func(cfg Config, _ int) (*kernels.Kernel, error) {
				return kernels.Heat(cfg.HeatRows, cfg.HeatCols)
			},
		},
		{
			name: "dft", fsChunk: kernels.DFTFSChunk, nfsChunk: kernels.DFTNFSChunk,
			predRuns: c.PredRunsDFT,
			load: func(cfg Config, _ int) (*kernels.Kernel, error) {
				return kernels.DFT(cfg.DFTN)
			},
		},
		{
			name: "linreg", fsChunk: kernels.LinRegFSChunk, nfsChunk: kernels.LinRegNFSChunk,
			predRuns: c.PredRunsLinReg,
			load: func(cfg Config, threads int) (*kernels.Kernel, error) {
				return kernels.LinReg(cfg.LinRegTasks, cfg.LinRegPoints, threads)
			},
		},
	}
}

func (c Config) caseByName(name string) (kernelCase, error) {
	for _, kc := range c.cases() {
		if kc.name == name {
			return kc, nil
		}
	}
	return kernelCase{}, fmt.Errorf("experiments: unknown kernel %q", name)
}
