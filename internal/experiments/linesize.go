package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// LineSizePoint is one cache-line size of the sensitivity sweep.
type LineSizePoint struct {
	LineSize        int64
	FSCases         int64
	Seconds         float64
	CoherenceMisses int64
}

// LineSizeResult holds the line-size sensitivity experiment: an extension
// beyond the paper's evaluation showing that the model's FS predictions
// track the architecture parameter that defines false sharing in the
// first place. At a fixed chunk size, lines that hold no more data than
// one chunk produce zero FS; every doubling beyond that threshold pulls
// more neighbours onto each line.
type LineSizeResult struct {
	Kernel  string
	Threads int
	Chunk   int64
	Points  []LineSizePoint
}

// LineSizeSweep analyzes the victim kernel under machines that differ
// only in cache-line size. Defaults: 8 threads, chunk 4, lines
// {32, 64, 128, 256}.
func LineSizeSweep(cfg Config, threads int, chunk int64, lineSizes []int64) (*LineSizeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = 8
	}
	if chunk <= 0 {
		chunk = 4
	}
	if len(lineSizes) == 0 {
		lineSizes = []int64{32, 64, 128, 256}
	}
	res := &LineSizeResult{Kernel: "linreg", Threads: threads, Chunk: chunk}
	points, err := sweep.Run(cfg.ctx(), len(lineSizes), cfg.Jobs, func(_ context.Context, i int) (LineSizePoint, error) {
		ls := lineSizes[i]
		m := withLineSize(cfg.Machine, ls)
		if err := m.Validate(); err != nil {
			return LineSizePoint{}, fmt.Errorf("experiments: line size %d: %w", ls, err)
		}
		// Re-lower so symbol alignment follows the line size (the paper's
		// alignment assumption is per-line-size).
		src := kernels.LinRegSource(cfg.LinRegTasks, cfg.LinRegPoints, threads)
		kern, err := kernels.LoadOpts("linreg", src, loopir.LowerOptions{LineSize: ls})
		if err != nil {
			return LineSizePoint{}, err
		}
		fs, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
			Machine: m, NumThreads: threads, Chunk: chunk, Counting: cfg.Counting,
			Eval: cfg.Eval, Extrapolate: cfg.Extrapolate,
		})
		if err != nil {
			return LineSizePoint{}, err
		}
		st, err := sim.Run(kern.Nest, sim.Options{Machine: m, NumThreads: threads, Chunk: chunk})
		if err != nil {
			return LineSizePoint{}, err
		}
		return LineSizePoint{
			LineSize: ls, FSCases: fs.FSCases, Seconds: st.Seconds, CoherenceMisses: st.CoherenceMisses,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// withLineSize clones a machine description with a different cache-line
// size at every level.
func withLineSize(base *machine.Desc, lineSize int64) *machine.Desc {
	m := *base
	m.Name = fmt.Sprintf("%s-line%d", base.Name, lineSize)
	m.LineSize = lineSize
	m.L1.LineSize = lineSize
	m.L2.LineSize = lineSize
	m.L3.LineSize = lineSize
	return &m
}

// Render writes the sweep as a table.
func (l *LineSizeResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "False sharing vs. cache-line size, %s kernel, %d threads, chunk=%d (extension)\n",
		l.Kernel, l.Threads, l.Chunk)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "line size\tmodel FS cases\tsim time (s)\tsim coherence misses\t")
	for _, p := range l.Points {
		fmt.Fprintf(tw, "%d\t%s\t%.6f\t%s\t\n", p.LineSize, count(p.FSCases), p.Seconds, count(p.CoherenceMisses))
	}
	return tw.Flush()
}

// CSV writes the sweep as CSV.
func (l *LineSizeResult) CSV(w io.Writer) error {
	rows := [][]string{{"kernel", "threads", "chunk", "line_size", "model_fs", "sim_seconds", "sim_coherence_misses"}}
	for _, p := range l.Points {
		rows = append(rows, []string{
			l.Kernel, fmt.Sprint(l.Threads), d(l.Chunk), d(p.LineSize),
			d(p.FSCases), f(p.Seconds), d(p.CoherenceMisses),
		})
	}
	return writeAllCSV(w, rows)
}
