package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/sweep"
)

// ModelCostPoint is one problem size of the modeling-cost study.
type ModelCostPoint struct {
	// Rows/Cols of the heat grid analyzed.
	Rows, Cols int64
	// Iterations the full model evaluates vs the predictor's sample.
	FullIterations    int64
	SampledIterations int64
	// Wall time of each (on the host running the analysis).
	FullTime    time.Duration
	PredictTime time.Duration
	// Accuracy of the prediction against the full model.
	FullFS      int64
	PredictedFS int64
	ErrorPct    float64
}

// ModelCostResult quantifies Section III-E's motivation: the full model
// must evaluate All_num_of_iters/num_of_threads iterations, so its cost
// grows with the loop, while the linear-regression predictor evaluates a
// fixed number of chunk runs — constant cost, bounded error.
type ModelCostResult struct {
	Threads   int
	ChunkRuns int64
	Points    []ModelCostPoint
}

// ModelingCost runs the study on the heat kernel across growing grids.
func ModelingCost(cfg Config, threads int, chunkRuns int64, sizes [][2]int64) (*ModelCostResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = 8
	}
	if chunkRuns <= 0 {
		chunkRuns = 20
	}
	if len(sizes) == 0 {
		sizes = [][2]int64{{24, 1024}, {48, 2048}, {96, 4096}}
	}
	res := &ModelCostResult{Threads: threads, ChunkRuns: chunkRuns}
	// Points fan out on the sweep pool; FullTime and PredictTime are wall
	// times, so the interesting number under -j > 1 is their per-point
	// ratio (both sides of a point contend equally), not the absolute
	// values.
	points, err := sweep.Run(cfg.ctx(), len(sizes), cfg.Jobs, func(_ context.Context, i int) (ModelCostPoint, error) {
		sz := sizes[i]
		kern, err := kernels.Heat(sz[0], sz[1])
		if err != nil {
			return ModelCostPoint{}, err
		}
		opts := fsmodel.Options{Machine: cfg.Machine, NumThreads: threads, Chunk: 1, Counting: cfg.Counting,
			Eval: cfg.Eval, Extrapolate: cfg.Extrapolate}

		start := time.Now()
		full, err := fsmodel.Analyze(kern.Nest, opts)
		if err != nil {
			return ModelCostPoint{}, fmt.Errorf("experiments: modelcost %dx%d: %w", sz[0], sz[1], err)
		}
		fullTime := time.Since(start)

		start = time.Now()
		pred, err := fsmodel.Predict(kern.Nest, opts, chunkRuns)
		if err != nil {
			return ModelCostPoint{}, err
		}
		predTime := time.Since(start)

		p := ModelCostPoint{
			Rows: sz[0], Cols: sz[1],
			FullIterations:    full.Iterations,
			SampledIterations: pred.IterationsEvaluated,
			FullTime:          fullTime,
			PredictTime:       predTime,
			FullFS:            full.FSCases,
			PredictedFS:       pred.PredictedFS,
		}
		if full.FSCases > 0 {
			p.ErrorPct = 100 * float64(pred.PredictedFS-full.FSCases) / float64(full.FSCases)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Render writes the study as a table.
func (m *ModelCostResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modeling cost: full FS model vs. linear-regression prediction (%d chunk runs), heat kernel, %d threads\n",
		m.ChunkRuns, m.Threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "grid\tfull iters\tsampled iters\tfull time\tpredict time\tfull FS\tpredicted FS\terror\t")
	for _, p := range m.Points {
		fmt.Fprintf(tw, "%dx%d\t%s\t%s\t%v\t%v\t%s\t%s\t%+.1f%%\t\n",
			p.Rows, p.Cols, count(p.FullIterations), count(p.SampledIterations),
			p.FullTime.Round(time.Millisecond), p.PredictTime.Round(time.Millisecond),
			count(p.FullFS), count(p.PredictedFS), p.ErrorPct)
	}
	return tw.Flush()
}

// CSV writes the study as CSV.
func (m *ModelCostResult) CSV(w io.Writer) error {
	rows := [][]string{{
		"rows", "cols", "threads", "chunk_runs",
		"full_iterations", "sampled_iterations",
		"full_ns", "predict_ns", "full_fs", "predicted_fs", "error_pct",
	}}
	for _, p := range m.Points {
		rows = append(rows, []string{
			d(p.Rows), d(p.Cols), fmt.Sprint(m.Threads), d(m.ChunkRuns),
			d(p.FullIterations), d(p.SampledIterations),
			d(p.FullTime.Nanoseconds()), d(p.PredictTime.Nanoseconds()),
			d(p.FullFS), d(p.PredictedFS), f(p.ErrorPct),
		})
	}
	return writeAllCSV(w, rows)
}
