package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Exportable is implemented by every experiment result: rendering as an
// aligned text table, as CSV rows, or as JSON.
type Exportable interface {
	Render(w io.Writer) error
	CSV(w io.Writer) error
}

// Compile-time checks that every result type is exportable.
var (
	_ Exportable = (*ModelCostResult)(nil)
	_ Exportable = (*LineSizeResult)(nil)
	_ Exportable = (*TableResult)(nil)
	_ Exportable = (*PredictionTableResult)(nil)
	_ Exportable = (*ChunkSweepResult)(nil)
	_ Exportable = (*LinearityResult)(nil)
	_ Exportable = (*SummaryResult)(nil)
)

// WriteJSON marshals any experiment result with indentation.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeAllCSV(w io.Writer, rows [][]string) error {
	return writeAll(csv.NewWriter(w), rows)
}

func writeAll(cw *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

// CSV writes the measured-vs-modeled table (Tables I–III).
func (t *TableResult) CSV(w io.Writer) error {
	rows := [][]string{{
		"kernel", "threads", "fs_chunk", "nfs_chunk",
		"time_fs_s", "time_nfs_s", "measured_pct", "modeled_pct",
		"n_fs", "n_nfs", "coherence_misses_fs", "coherence_misses_nfs",
	}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			t.Kernel, strconv.Itoa(r.Threads), d(t.FSChunk), d(t.NFSChunk),
			f(r.TimeFS), f(r.TimeNFS), f(r.MeasuredPct), f(r.ModeledPct),
			d(r.NFS), d(r.NNFS), d(r.CoherenceMissesFS), d(r.CoherenceMissesNFS),
		})
	}
	return writeAll(csv.NewWriter(w), rows)
}

// CSV writes the prediction table (Tables IV–VI).
func (t *PredictionTableResult) CSV(w io.Writer) error {
	rows := [][]string{{
		"kernel", "threads", "chunk_runs",
		"pred_fs", "pred_nfs", "pred_pct",
		"model_fs", "model_nfs", "model_pct", "r2",
	}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			t.Kernel, strconv.Itoa(r.Threads), d(t.ChunkRuns),
			d(r.PredFS), d(r.PredNFS), f(r.PredPct),
			d(r.ModelFS), d(r.ModelNFS), f(r.ModelPct), f(r.R2FS),
		})
	}
	return writeAll(csv.NewWriter(w), rows)
}

// CSV writes the chunk sweep (Figure 2).
func (c *ChunkSweepResult) CSV(w io.Writer) error {
	rows := [][]string{{"kernel", "threads", "chunk", "seconds", "coherence_misses", "model_fs_cases"}}
	for _, p := range c.Points {
		rows = append(rows, []string{
			c.Kernel, strconv.Itoa(c.Threads), d(p.Chunk), f(p.Seconds),
			d(p.CoherenceMisses), d(p.ModelFSCases),
		})
	}
	return writeAll(csv.NewWriter(w), rows)
}

// CSV writes the linearity series (Figure 6), one row per chunk run.
func (l *LinearityResult) CSV(w io.Writer) error {
	rows := [][]string{{"kernel", "threads", "chunk", "chunk_run", "cumulative_fs"}}
	for _, s := range l.Series {
		for i, v := range s.PerRun {
			rows = append(rows, []string{
				l.Kernel, strconv.Itoa(l.Threads), d(s.Chunk), strconv.Itoa(i + 1), d(v),
			})
		}
	}
	return writeAll(csv.NewWriter(w), rows)
}

// CSV writes the summary series (Figures 8–9).
func (s *SummaryResult) CSV(w io.Writer) error {
	rows := [][]string{{"kernel", "threads", "measured_pct", "modeled_pct", "predicted_pct"}}
	for _, r := range s.Rows {
		rows = append(rows, []string{
			s.Kernel, strconv.Itoa(r.Threads), f(r.Measured), f(r.Modeled), f(r.Predicted),
		})
	}
	return writeAll(csv.NewWriter(w), rows)
}

// Export writes v in the requested format: "text" (default), "csv" or
// "json".
func Export(w io.Writer, v Exportable, format string) error {
	switch format {
	case "", "text":
		return v.Render(w)
	case "csv":
		return v.CSV(w)
	case "json":
		return WriteJSON(w, v)
	}
	return fmt.Errorf("experiments: unknown format %q (want text, csv or json)", format)
}
