package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/kernels"
)

func kernelsLinReg(cfg Config, threads int) (*kernels.Kernel, error) {
	return kernels.LinReg(cfg.LinRegTasks, cfg.LinRegPoints, threads)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func count(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%dM", v/1_000_000)
	case v >= 10_000:
		return fmt.Sprintf("%dK", v/1_000)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Render writes the table in the paper's column layout (Tables I–III).
func (t *TableResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Comparison of %% of false sharing overheads incurred in %s kernel\n", t.Kernel)
	fmt.Fprintf(w, "(FS case: chunk=%d; non-FS case: chunk=%d; times from the MESI simulator)\n", t.FSChunk, t.NFSChunk)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "threads\ttime FS (s)\ttime non-FS (s)\tmeasured FS\tmodeled FS\tN_fs\tN_nfs\t")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%s\t%s\t%s\t%s\t\n",
			r.Threads, r.TimeFS, r.TimeNFS, pct(r.MeasuredPct), pct(r.ModeledPct), count(r.NFS), count(r.NNFS))
	}
	return tw.Flush()
}

// Render writes the prediction table (Tables IV–VI).
func (t *PredictionTableResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Predicted vs. modeled false sharing cases and their overhead %%s in %s kernel\n", t.Kernel)
	fmt.Fprintf(w, "(prediction from %d chunk runs; chunks %d vs %d)\n", t.ChunkRuns, t.FSChunk, t.NFSChunk)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "threads\tpred FS cases\tpred non-FS\tpred FS%\tmodeled FS cases\tmodeled non-FS\tmodeled FS%\tR2\t")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.4f\t\n",
			r.Threads, count(r.PredFS), count(r.PredNFS), pct(r.PredPct),
			count(r.ModelFS), count(r.ModelNFS), pct(r.ModelPct), r.R2FS)
	}
	return tw.Flush()
}

// Render writes the chunk sweep (Figure 2) as a table with a text bar per
// point.
func (c *ChunkSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Execution time vs. chunk size, %s kernel, %d threads (Figure 2)\n", c.Kernel, c.Threads)
	var max float64
	for _, p := range c.Points {
		if p.Seconds > max {
			max = p.Seconds
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "chunk\ttime (s)\tcoherence misses\tmodel FS cases\t")
	for _, p := range c.Points {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(p.Seconds/max*40+0.5))
		}
		fmt.Fprintf(tw, "%d\t%.5f\t%s\t%s\t%s\n", p.Chunk, p.Seconds, count(p.CoherenceMisses), count(p.ModelFSCases), bar)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "improvement from chunk tuning: %s\n", pct(c.ImprovementPct))
	return nil
}

// Render writes the linearity series (Figure 6).
func (l *LinearityResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "False sharing cases vs. chunk runs, %s kernel, %d threads (Figure 6)\n", l.Kernel, l.Threads)
	for _, s := range l.Series {
		fmt.Fprintf(w, "chunk=%d: fit y = %.1f*x %+.1f, R2=%.6f over %d runs\n",
			s.Chunk, s.Fit.A, s.Fit.B, s.Fit.R2, len(s.PerRun))
		n := len(s.PerRun)
		step := 1
		if n > 10 {
			step = n / 10
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "chunk run\tcumulative FS cases\t")
		for i := 0; i < n; i += step {
			fmt.Fprintf(tw, "%d\t%s\t\n", i+1, count(s.PerRun[i]))
		}
		if (n-1)%step != 0 {
			fmt.Fprintf(tw, "%d\t%s\t\n", n, count(s.PerRun[n-1]))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the summary (Figures 8–9).
func (s *SummaryResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "False sharing effect: measured vs. modeled vs. predicted, %s kernel (Figures 8/9)\n", s.Kernel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "threads\tmeasured\tmodeled\tpredicted\t")
	for _, r := range s.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t\n", r.Threads, pct(r.Measured), pct(r.Modeled), pct(r.Predicted))
	}
	return tw.Flush()
}
