// Package machine describes target machines: core counts, cache hierarchy
// geometry, access latencies, and processor resources. The cost models and
// the MESI simulator are both parameterized by a Desc, mirroring how
// Open64's LNO cost models are driven by per-target machine tables.
//
// Paper48 reproduces the paper's evaluation platform: four 2.2 GHz 12-core
// processors (48 cores), 64 KB L1 and 512 KB L2 per core, a 10240 KB L3
// shared by each 12-core processor, and 64-byte lines at every level.
package machine

import (
	"fmt"

	"repro/internal/cache"
)

// Desc describes a cache-coherent shared-memory machine.
type Desc struct {
	Name string
	// GHz is the core clock; cycle counts divide by this to get seconds.
	GHz float64

	Cores          int
	CoresPerSocket int // cores sharing one L3

	LineSize int64

	L1 cache.Geometry // private, per core
	L2 cache.Geometry // private, per core
	L3 cache.Geometry // shared per socket

	// Latencies in core cycles.
	L1Latency  int64
	L2Latency  int64
	L3Latency  int64
	MemLatency int64
	// Cache-to-cache transfer of a line another core holds Modified
	// (the dominant cost of a false-sharing miss).
	CoherenceLatency int64
	// Cost of posting an invalidation to remote sharers on a write.
	InvalidateLatency int64
	// BusTransferCycles is the bus occupancy of one off-core transaction,
	// used by the simulator's optional bus-contention model (the paper's
	// future-work item: "shared cache and bus interferences").
	BusTransferCycles int64

	// TLB, modeled as another cache level (paper Section II-B2).
	PageSize   int64
	TLBEntries int64
	TLBLatency int64 // miss penalty in cycles

	// Processor resources for the processor model (Section II-B1).
	IssueWidth int // instructions issued per cycle
	FPUnits    int // floating point units
	MemUnits   int // load/store ports
	IntUnits   int // integer ALUs
	FPAddLat   int64
	FPMulLat   int64
	FPDivLat   int64
	LoadLat    int64 // L1-hit load-to-use latency

	// OpenMP runtime overheads in cycles (parallel model, Section II-B3).
	ParallelStartup     int64 // fork/join cost per parallel region
	ChunkDispatch       int64 // scheduling cost per chunk per thread
	BarrierPerThread    int64 // join-barrier cost scaled by thread count
	LoopOverheadPerIter int64 // index increment + bound test per iteration
}

// Validate checks the description for consistency.
func (d *Desc) Validate() error {
	if d.Cores <= 0 {
		return fmt.Errorf("machine %s: non-positive core count %d", d.Name, d.Cores)
	}
	if d.GHz <= 0 {
		return fmt.Errorf("machine %s: non-positive clock %f", d.Name, d.GHz)
	}
	if d.LineSize <= 0 || d.LineSize&(d.LineSize-1) != 0 {
		return fmt.Errorf("machine %s: line size %d not a power of two", d.Name, d.LineSize)
	}
	for _, g := range []struct {
		name string
		geom cache.Geometry
	}{{"L1", d.L1}, {"L2", d.L2}, {"L3", d.L3}} {
		if g.geom.SizeBytes == 0 {
			continue // level absent
		}
		if err := g.geom.Validate(); err != nil {
			return fmt.Errorf("machine %s: %s: %w", d.Name, g.name, err)
		}
		if g.geom.LineSize != d.LineSize {
			return fmt.Errorf("machine %s: %s line size %d != machine line size %d",
				d.Name, g.name, g.geom.LineSize, d.LineSize)
		}
	}
	if d.CoresPerSocket <= 0 || d.Cores%d.CoresPerSocket != 0 {
		return fmt.Errorf("machine %s: cores (%d) not divisible by cores-per-socket (%d)",
			d.Name, d.Cores, d.CoresPerSocket)
	}
	return nil
}

// Seconds converts a cycle count to seconds at the machine's clock.
func (d *Desc) Seconds(cycles float64) float64 { return cycles / (d.GHz * 1e9) }

// PrivateCacheLines returns the line capacity of the largest private cache
// level, which is the stack depth the FS model uses for each thread's
// cache state.
func (d *Desc) PrivateCacheLines() int {
	g := d.L2
	if g.SizeBytes == 0 {
		g = d.L1
	}
	return int(g.Lines())
}

// Paper48 models the paper's 48-core evaluation machine.
func Paper48() *Desc {
	const line = 64
	return &Desc{
		Name:           "paper48",
		GHz:            2.2,
		Cores:          48,
		CoresPerSocket: 12,
		LineSize:       line,
		L1:             cache.Geometry{SizeBytes: 64 << 10, LineSize: line, Assoc: 2},
		L2:             cache.Geometry{SizeBytes: 512 << 10, LineSize: line, Assoc: 16},
		L3:             cache.Geometry{SizeBytes: 10240 << 10, LineSize: line, Assoc: 16},

		L1Latency:         3,
		L2Latency:         15,
		L3Latency:         45,
		MemLatency:        220,
		CoherenceLatency:  110,
		InvalidateLatency: 35,
		BusTransferCycles: 8,

		PageSize:   4096,
		TLBEntries: 512,
		TLBLatency: 30,

		IssueWidth: 3,
		FPUnits:    1,
		MemUnits:   2,
		IntUnits:   3,
		FPAddLat:   4,
		FPMulLat:   4,
		FPDivLat:   20,
		LoadLat:    4,

		ParallelStartup:     12000,
		ChunkDispatch:       90,
		BarrierPerThread:    450,
		LoopOverheadPerIter: 2,
	}
}

// SmallTest is a deliberately tiny machine used by unit tests so capacity
// effects trigger with little data.
func SmallTest() *Desc {
	const line = 64
	return &Desc{
		Name:           "smalltest",
		GHz:            1.0,
		Cores:          4,
		CoresPerSocket: 4,
		LineSize:       line,
		L1:             cache.Geometry{SizeBytes: 1 << 10, LineSize: line, Assoc: 2},
		L2:             cache.Geometry{SizeBytes: 4 << 10, LineSize: line, Assoc: 4},
		L3:             cache.Geometry{SizeBytes: 16 << 10, LineSize: line, Assoc: 4},

		L1Latency:         2,
		L2Latency:         8,
		L3Latency:         20,
		MemLatency:        100,
		CoherenceLatency:  60,
		InvalidateLatency: 20,
		BusTransferCycles: 6,

		PageSize:   4096,
		TLBEntries: 16,
		TLBLatency: 20,

		IssueWidth: 2,
		FPUnits:    1,
		MemUnits:   1,
		IntUnits:   2,
		FPAddLat:   3,
		FPMulLat:   3,
		FPDivLat:   12,
		LoadLat:    3,

		ParallelStartup:     1000,
		ChunkDispatch:       40,
		BarrierPerThread:    100,
		LoopOverheadPerIter: 2,
	}
}

// Modern16 models a contemporary single-socket 16-core part: larger
// private caches and TLB, a bigger shared L3, faster coherence. Useful
// for checking that conclusions drawn on the paper's 2012 machine carry
// over to newer geometry.
func Modern16() *Desc {
	const line = 64
	return &Desc{
		Name:           "modern16",
		GHz:            3.5,
		Cores:          16,
		CoresPerSocket: 16,
		LineSize:       line,
		L1:             cache.Geometry{SizeBytes: 48 << 10, LineSize: line, Assoc: 12},
		L2:             cache.Geometry{SizeBytes: 2048 << 10, LineSize: line, Assoc: 16},
		L3:             cache.Geometry{SizeBytes: 32768 << 10, LineSize: line, Assoc: 16},

		L1Latency:         4,
		L2Latency:         14,
		L3Latency:         40,
		MemLatency:        280,
		CoherenceLatency:  90,
		InvalidateLatency: 30,
		BusTransferCycles: 4,

		PageSize:   4096,
		TLBEntries: 2048,
		TLBLatency: 25,

		IssueWidth: 6,
		FPUnits:    2,
		MemUnits:   3,
		IntUnits:   4,
		FPAddLat:   3,
		FPMulLat:   4,
		FPDivLat:   14,
		LoadLat:    5,

		ParallelStartup:     9000,
		ChunkDispatch:       60,
		BarrierPerThread:    300,
		LoopOverheadPerIter: 1,
	}
}
