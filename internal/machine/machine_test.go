package machine

import (
	"math"
	"testing"

	"repro/internal/cache"
)

func TestPresetsValid(t *testing.T) {
	for _, d := range []*Desc{Paper48(), SmallTest(), Modern16()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestPaper48MatchesPaper(t *testing.T) {
	d := Paper48()
	if d.Cores != 48 || d.CoresPerSocket != 12 {
		t.Fatalf("core counts: %d/%d", d.Cores, d.CoresPerSocket)
	}
	if d.GHz != 2.2 {
		t.Fatalf("clock = %f", d.GHz)
	}
	if d.L1.SizeBytes != 64<<10 || d.L2.SizeBytes != 512<<10 || d.L3.SizeBytes != 10240<<10 {
		t.Fatalf("cache sizes: %d/%d/%d", d.L1.SizeBytes, d.L2.SizeBytes, d.L3.SizeBytes)
	}
	if d.LineSize != 64 {
		t.Fatalf("line size = %d", d.LineSize)
	}
	// "All the caches at the three levels have the same cache line size."
	for _, g := range []cache.Geometry{d.L1, d.L2, d.L3} {
		if g.LineSize != 64 {
			t.Fatalf("level line size = %d", g.LineSize)
		}
	}
}

func TestSeconds(t *testing.T) {
	d := Paper48()
	got := d.Seconds(2.2e9)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("2.2e9 cycles = %f s, want 1", got)
	}
}

func TestPrivateCacheLines(t *testing.T) {
	d := Paper48()
	if got := d.PrivateCacheLines(); got != int((512<<10)/64) {
		t.Fatalf("private lines = %d", got)
	}
	// Without an L2 the L1 capacity applies.
	d2 := Paper48()
	d2.L2 = cache.Geometry{}
	if got := d2.PrivateCacheLines(); got != int((64<<10)/64) {
		t.Fatalf("L1-only private lines = %d", got)
	}
}

func TestValidateRejections(t *testing.T) {
	mut := func(f func(*Desc)) *Desc {
		d := Paper48()
		f(d)
		return d
	}
	bad := []*Desc{
		mut(func(d *Desc) { d.Cores = 0 }),
		mut(func(d *Desc) { d.GHz = 0 }),
		mut(func(d *Desc) { d.LineSize = 48 }),
		mut(func(d *Desc) { d.L1.LineSize = 128 }),
		mut(func(d *Desc) { d.CoresPerSocket = 7 }),
		mut(func(d *Desc) { d.L2.SizeBytes = 1000 }), // not multiple of line
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
