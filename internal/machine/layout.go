package machine

import "fmt"

// Cache-line layout arithmetic. These helpers are the single place byte
// offsets from any front end — loopir symbol bases for mini-C, go/types
// field offsets for Go (internal/govet) — are mapped onto the machine's
// line geometry. Keeping the math on Desc (rather than open-coded at
// call sites) means an odd line size exercises every consumer the same
// way; the odd-geometry tests pin 32- and 128-byte lines.

// LineOf returns the index of the cache line containing byte offset off
// (off must be non-negative).
func (d *Desc) LineOf(off int64) int64 { return off / d.LineSize }

// SameLine reports whether byte offsets a and b fall on one cache line.
func (d *Desc) SameLine(a, b int64) bool { return a/d.LineSize == b/d.LineSize }

// LinesSpanned returns how many cache lines the byte range
// [off, off+size) touches; a zero- or negative-size range touches none.
func (d *Desc) LinesSpanned(off, size int64) int64 {
	if size <= 0 {
		return 0
	}
	return (off+size-1)/d.LineSize - off/d.LineSize + 1
}

// RangesShareLine reports whether [offA, offA+sizeA) and
// [offB, offB+sizeB) touch a common cache line. Empty ranges share
// nothing.
func (d *Desc) RangesShareLine(offA, sizeA, offB, sizeB int64) bool {
	if sizeA <= 0 || sizeB <= 0 {
		return false
	}
	aFirst, aLast := offA/d.LineSize, (offA+sizeA-1)/d.LineSize
	bFirst, bLast := offB/d.LineSize, (offB+sizeB-1)/d.LineSize
	return aFirst <= bLast && bFirst <= aLast
}

// AlignUpToLine rounds off up to the next line boundary (identity when
// already aligned).
func (d *Desc) AlignUpToLine(off int64) int64 {
	return (off + d.LineSize - 1) / d.LineSize * d.LineSize
}

// PadToLine returns the bytes that must be appended to an object of the
// given size so the padded size is a positive line multiple: the padding
// fsvet's GV002/GV003 suggested fixes insert. A size that is already a
// line multiple needs none.
func (d *Desc) PadToLine(size int64) int64 {
	if size <= 0 {
		return d.LineSize
	}
	rem := size % d.LineSize
	if rem == 0 {
		return 0
	}
	return d.LineSize - rem
}

// WithLineSize returns a copy of the machine re-lined to the given line
// size: the top-level LineSize and every present cache level's geometry
// are replaced, keeping per-level capacities (so line counts scale
// inversely). The receiver is not modified. Line must be a positive
// power of two or an error is returned, mirroring Validate.
func (d *Desc) WithLineSize(line int64) (*Desc, error) {
	if line <= 0 || line&(line-1) != 0 {
		return nil, fmt.Errorf("machine %s: line size %d not a positive power of two", d.Name, line)
	}
	nd := *d
	nd.LineSize = line
	if nd.L1.SizeBytes != 0 {
		nd.L1.LineSize = line
	}
	if nd.L2.SizeBytes != 0 {
		nd.L2.LineSize = line
	}
	if nd.L3.SizeBytes != 0 {
		nd.L3.LineSize = line
	}
	return &nd, nil
}
