package machine

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// TestLayoutHelpers pins the line arithmetic at the normal and odd line
// sizes (32, 64, 128) so every consumer of the helpers — loopir bases
// and fsvet's go/types offsets alike — sees the same geometry.
func TestLayoutHelpers(t *testing.T) {
	for _, line := range []int64{32, 64, 128} {
		d, err := Paper48().WithLineSize(line)
		if err != nil {
			t.Fatalf("WithLineSize(%d): %v", line, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("re-lined machine invalid at %d: %v", line, err)
		}
		if got := d.LineOf(line - 1); got != 0 {
			t.Errorf("L=%d: LineOf(%d) = %d, want 0", line, line-1, got)
		}
		if got := d.LineOf(line); got != 1 {
			t.Errorf("L=%d: LineOf(%d) = %d, want 1", line, line, got)
		}
		if !d.SameLine(0, line-1) || d.SameLine(0, line) {
			t.Errorf("L=%d: SameLine boundary wrong", line)
		}
		if got := d.LinesSpanned(0, 0); got != 0 {
			t.Errorf("L=%d: LinesSpanned(0,0) = %d, want 0", line, got)
		}
		if got := d.LinesSpanned(0, line); got != 1 {
			t.Errorf("L=%d: LinesSpanned(0,%d) = %d, want 1", line, line, got)
		}
		if got := d.LinesSpanned(line-1, 2); got != 2 {
			t.Errorf("L=%d: LinesSpanned(%d,2) = %d, want 2", line, line-1, got)
		}
		if !d.RangesShareLine(0, 8, line-1, 8) {
			t.Errorf("L=%d: straddling ranges should share a line", line)
		}
		if d.RangesShareLine(0, 8, line, 8) {
			t.Errorf("L=%d: disjoint-line ranges should not share", line)
		}
		if d.RangesShareLine(0, 0, 0, 8) {
			t.Errorf("L=%d: empty range shares nothing", line)
		}
		if got := d.AlignUpToLine(1); got != line {
			t.Errorf("L=%d: AlignUpToLine(1) = %d, want %d", line, got, line)
		}
		if got := d.AlignUpToLine(line); got != line {
			t.Errorf("L=%d: AlignUpToLine(%d) = %d, want identity", line, line, got)
		}
	}
}

// TestWithLineSizeRejectsBadLines mirrors Validate's power-of-two rule.
func TestWithLineSizeRejectsBadLines(t *testing.T) {
	for _, bad := range []int64{0, -64, 48, 96} {
		if _, err := Paper48().WithLineSize(bad); err == nil {
			t.Errorf("WithLineSize(%d) succeeded, want error", bad)
		}
	}
	// The receiver must be untouched by a successful re-line.
	d := Paper48()
	if _, err := d.WithLineSize(128); err != nil {
		t.Fatal(err)
	}
	if d.LineSize != 64 || d.L1.LineSize != 64 {
		t.Fatalf("WithLineSize mutated the receiver: %+v", d)
	}
}

// TestPrivateCacheLinesEdges covers the level-absent edge cases: the FS
// model's per-thread stack depth comes from the largest private level
// that exists, and a machine with no private caches models zero lines.
func TestPrivateCacheLinesEdges(t *testing.T) {
	d := Paper48()
	if got, want := d.PrivateCacheLines(), int((512<<10)/64); got != want {
		t.Errorf("full hierarchy: PrivateCacheLines = %d, want %d (L2)", got, want)
	}
	noL2 := *d
	noL2.L2 = cache.Geometry{}
	if got, want := noL2.PrivateCacheLines(), int((64<<10)/64); got != want {
		t.Errorf("L2 absent: PrivateCacheLines = %d, want %d (L1)", got, want)
	}
	noPrivate := noL2
	noPrivate.L1 = cache.Geometry{}
	if got := noPrivate.PrivateCacheLines(); got != 0 {
		t.Errorf("no private levels: PrivateCacheLines = %d, want 0", got)
	}
	// Re-lining halves/doubles the line count with capacity fixed.
	wide, err := d.WithLineSize(128)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wide.PrivateCacheLines(), int((512<<10)/128); got != want {
		t.Errorf("128B lines: PrivateCacheLines = %d, want %d", got, want)
	}
}

// TestPadToLineProperty is the padding property test: for line sizes
// {32, 64, 128} and arbitrary object sizes, the suggested padding always
// produces a positive line-multiple layout and never wastes a full line
// on an already-aligned object.
func TestPadToLineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, line := range []int64{32, 64, 128} {
		d, err := SmallTest().WithLineSize(line)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			size := rng.Int63n(4 * line)
			pad := d.PadToLine(size)
			padded := size + pad
			if padded <= 0 || padded%line != 0 {
				t.Fatalf("L=%d size=%d: padded size %d not a positive line multiple", line, size, padded)
			}
			if pad < 0 || pad > line {
				t.Fatalf("L=%d size=%d: pad %d outside [0, %d]", line, size, pad, line)
			}
			if size > 0 && size%line == 0 && pad != 0 {
				t.Fatalf("L=%d: aligned size %d padded by %d", line, size, pad)
			}
			// Padded elements never straddle: consecutive elements of the
			// padded size occupy disjoint line sets.
			if d.RangesShareLine(0, padded, padded, padded) {
				t.Fatalf("L=%d: consecutive padded elements of %d share a line", line, padded)
			}
		}
	}
}
