package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledFastPathIsNil(t *testing.T) {
	Reset()
	Arm("x", Fault{Kind: KindPanic}) // armed but registry disabled
	if err := Fire("x"); err != nil {
		t.Fatalf("Fire with registry disabled = %v", err)
	}
	if n := Fired("x"); n != 0 {
		t.Fatalf("disabled registry fired %d times", n)
	}
}

func TestErrorAndCounts(t *testing.T) {
	Enable()
	defer Reset()
	want := errors.New("injected")
	Arm("cache", Fault{Kind: KindError, Err: want})
	for i := 0; i < 3; i++ {
		if err := Fire("cache"); !errors.Is(err, want) {
			t.Fatalf("Fire = %v, want %v", err, want)
		}
	}
	if n := Fired("cache"); n != 3 {
		t.Fatalf("Fired = %d, want 3", n)
	}
	if err := Fire("unarmed"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Disarm("cache")
	if err := Fire("cache"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestDefaultErrorNamesPoint(t *testing.T) {
	Enable()
	defer Reset()
	Arm("pool", Fault{Kind: KindError})
	err := Fire("pool")
	if err == nil || !strings.Contains(err.Error(), "pool") {
		t.Fatalf("default injected error = %v, want it to name the point", err)
	}
}

func TestPanicKind(t *testing.T) {
	Enable()
	defer Reset()
	Arm("eval", Fault{Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Fatal("KindPanic did not panic")
		}
		if n := Fired("eval"); n != 1 {
			t.Fatalf("Fired = %d after panic, want 1", n)
		}
	}()
	Fire("eval")
}

func TestMaxFires(t *testing.T) {
	Enable()
	defer Reset()
	Arm("flight", Fault{Kind: KindError, MaxFires: 2})
	got := 0
	for i := 0; i < 5; i++ {
		if Fire("flight") != nil {
			got++
		}
	}
	if got != 2 || Fired("flight") != 2 {
		t.Fatalf("MaxFires=2 injected %d (counter %d)", got, Fired("flight"))
	}
}

func TestProbabilityIsSeededDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		Enable()
		defer Reset()
		Arm("p", Fault{Kind: KindError, Probability: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire("p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("probability 0.5 fired %d/%d — not probabilistic", hits, len(a))
	}
}

func TestDelayAndAllocSpike(t *testing.T) {
	Enable()
	defer Reset()
	Arm("slow", Fault{Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
	Arm("mem", Fault{Kind: KindAllocSpike, AllocBytes: 1 << 20})
	if err := Fire("mem"); err != nil {
		t.Fatalf("alloc-spike fault returned error: %v", err)
	}
	if Fired("mem") != 1 {
		t.Fatalf("alloc-spike did not count")
	}
}
