// Package faultinject provides deterministic, test-only fault points
// compiled into the service's seams (result cache, singleflight group,
// evaluation pool, evaluator) and the sweep workers. Production code
// calls Fire(point) at each seam; when the registry is disabled — the
// default, and the only state outside tests — Fire is a single atomic
// load and nothing else, so the seams cost effectively nothing.
//
// Tests Enable() the registry, Arm() points with faults (panic, error,
// delay, alloc-spike), drive load, and then reconcile observed behaviour
// against Fired() counts. Probabilistic faults draw from a per-point
// generator seeded at Arm time, so a chaos run with a fixed seed injects
// the same fault sequence every time.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the failure mode a fault point injects.
type Kind int

const (
	// KindError makes Fire return the armed error.
	KindError Kind = iota
	// KindPanic makes Fire panic (exercising the guard recover wrappers).
	KindPanic
	// KindDelay makes Fire sleep for the armed duration, then proceed
	// normally (exercising deadlines, queue backpressure and drains).
	KindDelay
	// KindAllocSpike makes Fire allocate and touch the armed number of
	// bytes before proceeding (exercising memory headroom and budgets).
	KindAllocSpike
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindAllocSpike:
		return "alloc-spike"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault describes what an armed point injects.
type Fault struct {
	Kind Kind
	// Err is returned by Fire for KindError (nil = a generic injected
	// error naming the point).
	Err error
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// AllocBytes is the spike size for KindAllocSpike.
	AllocBytes int
	// Probability is the chance each Fire call injects (0 = always).
	// Draws come from a generator seeded with Seed, so sequences are
	// reproducible.
	Probability float64
	// Seed seeds the per-point probability generator (0 = 1).
	Seed int64
	// MaxFires bounds how many times the point injects (0 = unlimited).
	MaxFires int64
}

// point is one armed fault point's runtime state.
type point struct {
	mu    sync.Mutex
	fault Fault
	rng   *rand.Rand
	fired int64
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  = make(map[string]*point)
	// sink defeats dead-code elimination of alloc spikes.
	sink atomic.Value
)

// Enable turns the registry on. Tests must pair it with a deferred
// Reset; production code never calls it.
func Enable() { enabled.Store(true) }

// Reset disarms every point and disables the registry.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Store(false)
	points = make(map[string]*point)
}

// Arm installs (or replaces) the fault for a named point. The registry
// must be Enabled for Fire to consult it.
func Arm(name string, f Fault) {
	if f.Seed == 0 {
		f.Seed = 1
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{fault: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Disarm removes one point, leaving the registry enabled.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Fired reports how many times the named point has injected its fault.
// Chaos tests reconcile this against observed responses and metrics.
func Fired(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Fire is the seam call: a no-op returning nil unless the registry is
// enabled and the named point is armed, in which case it injects the
// armed fault (returning an error, panicking, sleeping, or spiking an
// allocation). The disabled fast path is one atomic load.
func Fire(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	f := p.fault
	if f.MaxFires > 0 && p.fired >= f.MaxFires {
		p.mu.Unlock()
		return nil
	}
	if f.Probability > 0 && p.rng.Float64() >= f.Probability {
		p.mu.Unlock()
		return nil
	}
	p.fired++
	p.mu.Unlock()

	switch f.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	case KindAllocSpike:
		b := make([]byte, f.AllocBytes)
		for i := 0; i < len(b); i += 4096 {
			b[i] = 1
		}
		sink.Store(&b)
		sink.Store((*[]byte)(nil)) // release immediately; the spike is transient
		return nil
	default: // KindError
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: injected error at %s", name)
	}
}
