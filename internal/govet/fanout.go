package govet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/affine"
	"repro/internal/costmodel"
)

// Pass 2: goroutine fan-out shapes. The canonical Go parallel loop
//
//	for i := range work {
//		go func() { results[i] = f(work[i]) }()
//	}
//
// is the transliteration of the paper's schedule(static,1) OpenMP loop:
// iteration k writes the affine byte range [A·k + F, A·k + F + W) of the
// destination's backing array (A the element stride, F the written
// field's offset within the element, W its width), and adjacent indices
// are owned by different goroutines by construction. Exactly as in the
// mini-C analyzer, the number of adjacent-index boundaries whose writes
// land on one cache line is a residue count over the arithmetic
// progression of boundary addresses — affine.CountResidueAtLeast, closed
// form, trip-count independent (GV002).
//
// The same geometry scores indexed atomic operations — shards[i].n.Add(1)
// and atomic.AddInt64(&shards[i].n, 1): atomics are cross-goroutine by
// purpose, so an element size that is not a line multiple means distinct
// shards contend for one line (GV003), defeating the sharding.

// fanoutWrite is one indexed write observed inside a fan-out goroutine.
type fanoutWrite struct {
	target ast.Expr   // the written IndexExpr or SelectorExpr-over-IndexExpr
	base   *types.Var // the sliced/indexed container
	elem   types.Type // element type
	field  *types.Var // written field within the element (nil = whole element)
	trips  int64      // loop trip count, 0 if unknown
}

// runFanout is pass 2: GV002 (plain fan-out writes) and GV003 (indexed
// atomics) over the package.
func runFanout(p *Pass) {
	seen := make(map[string]bool) // dedupe key -> reported
	for _, f := range p.Files {
		walkFanout(p, f, nil, seen)
		walkIndexedAtomics(p, f, seen)
	}
}

// walkFanout descends the file tracking the set of loop variables in
// scope, and analyzes each `go func(...){...}(...)` launched inside a
// loop.
func walkFanout(p *Pass, n ast.Node, loops []*loopFrame, seen map[string]bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		fr := forFrame(p, n)
		walkChildren(p, n, append(loops, fr), seen)
		return
	case *ast.RangeStmt:
		fr := rangeFrame(p, n)
		walkChildren(p, n, append(loops, fr), seen)
		return
	case *ast.GoStmt:
		if len(loops) > 0 {
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				analyzeFanoutGoroutine(p, n, lit, loops, seen)
			}
		}
	}
	walkChildren(p, n, loops, seen)
}

// walkChildren recurses into n's children with the given loop stack.
func walkChildren(p *Pass, n ast.Node, loops []*loopFrame, seen map[string]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		switch c.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.GoStmt:
			walkFanout(p, c, loops, seen)
			return false
		}
		return true
	})
}

// loopFrame is one enclosing loop: its per-iteration variables and, when
// the bounds are compile-time constants, its trip count.
type loopFrame struct {
	vars  map[*types.Var]bool
	trips int64 // 0 = unknown
}

// forFrame extracts `for i := lo; i < hi; i++`-style loop variables and
// a constant trip count when lo and hi are constants.
func forFrame(p *Pass, n *ast.ForStmt) *loopFrame {
	fr := &loopFrame{vars: make(map[*types.Var]bool)}
	init, ok := n.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE {
		return fr
	}
	var lo int64
	loKnown := false
	for i, lhs := range init.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := p.Info.Defs[id].(*types.Var); ok {
			fr.vars[v] = true
		}
		if i < len(init.Rhs) {
			if c, ok := constInt(p, init.Rhs[i]); ok {
				lo, loKnown = c, true
			}
		}
	}
	if cond, ok := n.Cond.(*ast.BinaryExpr); ok && loKnown {
		if hi, ok := constInt(p, cond.Y); ok {
			switch cond.Op {
			case token.LSS:
				if hi > lo {
					fr.trips = hi - lo
				}
			case token.LEQ:
				if hi >= lo {
					fr.trips = hi - lo + 1
				}
			}
		}
	}
	return fr
}

// rangeFrame extracts `for i := range x` / `for i, v := range x` loop
// variables; the trip count is known when x has array type.
func rangeFrame(p *Pass, n *ast.RangeStmt) *loopFrame {
	fr := &loopFrame{vars: make(map[*types.Var]bool)}
	if n.Tok == token.DEFINE {
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if v, ok := p.Info.Defs[id].(*types.Var); ok {
					fr.vars[v] = true
				}
			}
		}
	}
	if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
		t := tv.Type.Underlying()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem().Underlying()
		}
		switch t := t.(type) {
		case *types.Array:
			fr.trips = t.Len()
		case *types.Basic:
			// for i := range N (Go 1.22 integer range)
			if c, ok := constInt(p, n.X); ok && c > 0 {
				fr.trips = c
			}
		}
	}
	return fr
}

// constInt evaluates expr to a constant int64 via the type checker.
func constInt(p *Pass, expr ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// analyzeFanoutGoroutine scores the writes of one fan-out goroutine:
// indexed writes whose index is a goroutine-varying variable (an
// enclosing loop variable captured per-iteration, or a parameter fed by
// one).
func analyzeFanoutGoroutine(p *Pass, g *ast.GoStmt, lit *ast.FuncLit, loops []*loopFrame, seen map[string]bool) {
	varying := make(map[*types.Var]bool)
	trips := int64(0)
	for _, fr := range loops {
		for v := range fr.vars {
			varying[v] = true
		}
	}
	if inner := loops[len(loops)-1]; inner.trips > 0 {
		trips = inner.trips
	}
	// Parameters fed by loop variables: go func(i int){...}(i).
	if lit.Type.Params != nil {
		argIdx := 0
		for _, fld := range lit.Type.Params.List {
			names := fld.Names
			if len(names) == 0 {
				argIdx++
				continue
			}
			for _, name := range names {
				if argIdx < len(g.Call.Args) {
					if id, ok := ast.Unparen(g.Call.Args[argIdx]).(*ast.Ident); ok {
						if src, ok := p.Info.Uses[id].(*types.Var); ok && varying[src] {
							if pv, ok := p.Info.Defs[name].(*types.Var); ok {
								varying[pv] = true
							}
						}
					}
				}
				argIdx++
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		default:
			return true
		}
		for _, tgt := range targets {
			w, ok := indexedWrite(p, tgt, varying, lit)
			if !ok {
				continue
			}
			w.trips = trips
			reportAdjacentWrites(p, w, seen)
		}
		return true
	})
}

// indexedWrite decides whether tgt is a write to base[idx] or
// base[idx].field with a goroutine-varying idx and a base declared
// outside the goroutine, and describes it.
func indexedWrite(p *Pass, tgt ast.Expr, varying map[*types.Var]bool, lit *ast.FuncLit) (fanoutWrite, bool) {
	tgt = ast.Unparen(tgt)
	var field *types.Var
	if sel, ok := tgt.(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && len(s.Index()) == 1 {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				field = v
				tgt = ast.Unparen(sel.X)
			}
		}
	}
	ix, ok := tgt.(*ast.IndexExpr)
	if !ok {
		return fanoutWrite{}, false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	if !ok {
		return fanoutWrite{}, false
	}
	iv, ok := p.Info.Uses[id].(*types.Var)
	if !ok || !varying[iv] {
		return fanoutWrite{}, false
	}
	baseID, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return fanoutWrite{}, false
	}
	base, ok := p.Info.Uses[baseID].(*types.Var)
	if !ok {
		return fanoutWrite{}, false
	}
	// The container must outlive the goroutine: declared outside the
	// function literal (captured local or package-level).
	if base.Pos() >= lit.Pos() && base.Pos() < lit.End() {
		return fanoutWrite{}, false
	}
	elem, ok := elemTypeOf(base.Type())
	if !ok {
		return fanoutWrite{}, false
	}
	return fanoutWrite{target: tgt, base: base, elem: elem, field: field}, true
}

// elemTypeOf unwraps a slice, array, or pointer-to-array type.
func elemTypeOf(t types.Type) (types.Type, bool) {
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	switch u := u.(type) {
	case *types.Slice:
		return u.Elem(), true
	case *types.Array:
		return u.Elem(), true
	}
	return nil, false
}

// strideGeometry computes (A, F, W): element stride, written-range
// offset within the element, and written width.
func strideGeometry(p *Pass, w fanoutWrite) (A, F, W int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	A = p.Sizes.Sizeof(w.elem)
	if A <= 0 {
		return 0, 0, 0, false
	}
	F, W = 0, A
	if w.field != nil {
		st, isStruct := w.elem.Underlying().(*types.Struct)
		if !isStruct {
			return 0, 0, 0, false
		}
		offs, szs, okL := layoutOf(p.Sizes, st)
		if !okL {
			return 0, 0, 0, false
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == w.field {
				F, W = offs[i], szs[i]
				break
			}
		}
	}
	if W <= 0 {
		return 0, 0, 0, false
	}
	return A, F, W, true
}

// straddleCount is the closed-form score: among n-1 adjacent-index
// boundaries, how many have the last written byte of index k and the
// first of k+1 on one cache line. The boundary-t address is the
// arithmetic progression (A+F) + A·t, so the count is a residue count.
func straddleCount(A, F, W, L, n int64) (straddles, boundaries int64) {
	if n < 2 {
		return 0, 0
	}
	boundaries = n - 1
	lo := A - W + 1
	straddles = affine.CountResidueAtLeast(A+F, A, L, lo, 0, boundaries)
	return straddles, boundaries
}

// reportAdjacentWrites emits GV002 for one fan-out write if its score is
// nonzero.
func reportAdjacentWrites(p *Pass, w fanoutWrite, seen map[string]bool) {
	m := p.machineOrDefault()
	L := m.LineSize
	A, F, W, ok := strideGeometry(p, w)
	if !ok {
		return
	}
	n, exact := w.trips, true
	if n <= 0 {
		n, exact = p.AssumedTrips, false
	}
	straddles, boundaries := straddleCount(A, F, W, L, n)
	if straddles == 0 {
		return
	}
	key := fmt.Sprintf("GV002/%s/%v/%d", w.base.Name(), w.base.Pos(), fieldPosKey(w.field))
	if seen[key] {
		return
	}
	seen[key] = true
	cycles := costmodel.FSWallCycles(straddles, m, m.Cores)
	what := fmt.Sprintf("%dB elements", A)
	if w.field != nil {
		what = fmt.Sprintf("%dB field %s of %dB elements", W, w.field.Name(), A)
	}
	suffix := ""
	if !exact {
		suffix = fmt.Sprintf(" (trip count unknown at compile time; assuming %d)", n)
	}
	d := Diagnostic{
		Pos:        w.target.Pos(),
		End:        w.target.End(),
		Code:       CodeAdjacentWrites,
		Straddles:  straddles,
		Boundaries: boundaries,
		LineSize:   L,
		Cycles:     cycles,
		Exact:      exact,
		Message: fmt.Sprintf(
			"goroutine-per-index writes to %s (%s): %d of %d adjacent-index boundaries share a %dB cache line, ~%.0f cycles of coherence traffic; pad the element to a line multiple%s",
			w.base.Name(), what, straddles, boundaries, L, cycles, suffix),
	}
	if fix, ok := padElementFix(p, w.elem); ok {
		d.Fixes = append(d.Fixes, fix)
	}
	p.report(d)
}

// fieldPosKey distinguishes whole-element from per-field writes in
// dedupe keys.
func fieldPosKey(f *types.Var) token.Pos {
	if f == nil {
		return token.NoPos
	}
	return f.Pos()
}

// walkIndexedAtomics finds GV003: atomic operations on elements of a
// slice/array whose element size is not a line multiple. Atomics imply
// cross-goroutine use, so no goroutine context is required.
func walkIndexedAtomics(p *Pass, f *ast.File, seen map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Form 1: atomic.AddInt64(&shards[i].n, 1).
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
			fn.Type().(*types.Signature).Recv() == nil && len(call.Args) > 0 {
			if _, reported := atomicFuncWrites(fn.Name()); reported {
				if w, ok := atomicOperand(p, call.Args[0]); ok {
					reportUnpaddedShard(p, call, w, seen)
				}
			}
			return true
		}
		// Form 2: shards[i].n.Add(1) — a method on an atomic value type.
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal &&
			isAtomicValueType(deref(s.Recv())) {
			if w, ok := atomicOperand(p, sel.X); ok {
				reportUnpaddedShard(p, call, w, seen)
			}
		}
		return true
	})
}

// deref unwraps one pointer level.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// atomicOperand resolves the operand of an atomic op — &base[i].f,
// base[i].f, base[i].f.g, or base[i] after unwrapping — to an indexed
// container access.
func atomicOperand(p *Pass, expr ast.Expr) (fanoutWrite, bool) {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	var field *types.Var
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			break
		}
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() && field == nil {
				field = v // outermost field keeps the written width honest
			}
		}
		expr = ast.Unparen(sel.X)
	}
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return fanoutWrite{}, false
	}
	baseID, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return fanoutWrite{}, false
	}
	base, ok := p.Info.Uses[baseID].(*types.Var)
	if !ok {
		return fanoutWrite{}, false
	}
	elem, ok := elemTypeOf(base.Type())
	if !ok {
		return fanoutWrite{}, false
	}
	// The written field is the innermost selection step directly on the
	// element, if any; recompute as the field whose parent is elem.
	return fanoutWrite{target: ix, base: base, elem: elem, field: fieldOnElem(p, elem, field)}, true
}

// fieldOnElem keeps field only if it is a direct field of elem's struct;
// deeper nesting degrades to whole-element geometry (conservative).
func fieldOnElem(p *Pass, elem types.Type, field *types.Var) *types.Var {
	if field == nil {
		return nil
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field {
			return field
		}
	}
	return nil
}

// reportUnpaddedShard emits GV003 when the shard element size is not a
// line multiple: distinct indices then contend for shared lines,
// defeating the sharding.
func reportUnpaddedShard(p *Pass, at ast.Node, w fanoutWrite, seen map[string]bool) {
	m := p.machineOrDefault()
	L := m.LineSize
	A, F, W, ok := strideGeometry(p, w)
	if !ok || A%L == 0 {
		return
	}
	key := fmt.Sprintf("GV003/%s/%v/%d", w.base.Name(), w.base.Pos(), fieldPosKey(w.field))
	if seen[key] {
		return
	}
	seen[key] = true
	// Shard count: array length when declared, else one shard per core
	// (the canonical sizing); boundaries score as in GV002.
	n, exact := int64(0), true
	if u, ok := w.base.Type().Underlying().(*types.Array); ok {
		n = u.Len()
	} else if ptr, ok := w.base.Type().Underlying().(*types.Pointer); ok {
		if u, ok := ptr.Elem().Underlying().(*types.Array); ok {
			n = u.Len()
		}
	}
	if n <= 0 {
		n, exact = int64(m.Cores), false
	}
	if n < 2 {
		return // a single element cannot shard-contend
	}
	straddles, boundaries := straddleCount(A, F, W, L, n)
	if straddles == 0 {
		return
	}
	cycles := costmodel.FSWallCycles(straddles, m, m.Cores)
	suffix := ""
	if !exact {
		suffix = fmt.Sprintf(" (shard count unknown at compile time; assuming %d, one per core)", n)
	}
	d := Diagnostic{
		Pos:        at.Pos(),
		End:        at.End(),
		Code:       CodeUnpaddedShard,
		Straddles:  straddles,
		Boundaries: boundaries,
		LineSize:   L,
		Cycles:     cycles,
		Exact:      exact,
		Message: fmt.Sprintf(
			"atomic operation on %s element (%dB, not a %dB line multiple): %d of %d adjacent shards share a cache line, ~%.0f cycles of coherence traffic; pad the element to a line multiple%s",
			w.base.Name(), A, L, straddles, boundaries, cycles, suffix),
	}
	if fix, ok := padElementFix(p, w.elem); ok {
		d.Fixes = append(d.Fixes, fix)
	}
	p.report(d)
}
