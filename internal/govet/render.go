package govet

import (
	"encoding/json"
	"fmt"
	"go/format"
	"io"
	"os"
	"sort"

	"repro/internal/analysis/sarifwriter"
)

// PackageReport pairs one analyzed package with its findings; renderers
// consume a slice of these so multi-package runs produce one document.
type PackageReport struct {
	// Path is the package import path (or a pseudo-name for synthetic
	// sources).
	Path  string
	Pass  *Pass
	Diags []Diagnostic
}

// Findings counts diagnostics across reports.
func Findings(reports []PackageReport) int {
	n := 0
	for _, r := range reports {
		n += len(r.Diags)
	}
	return n
}

// WriteText renders reports vet-style: file:line:col: code: message.
func WriteText(w io.Writer, reports []PackageReport) error {
	total := 0
	for _, r := range reports {
		for _, d := range r.Diags {
			total++
			pos := r.Pass.Fset.Position(d.Pos)
			if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Code, d.Message); err != nil {
				return err
			}
			for _, fix := range d.Fixes {
				if _, err := fmt.Fprintf(w, "\tfix: %s\n", fix.Message); err != nil {
					return err
				}
			}
		}
	}
	var err error
	if total == 0 {
		_, err = fmt.Fprintf(w, "fsvet: no findings in %d package(s)\n", len(reports))
	} else {
		_, err = fmt.Fprintf(w, "fsvet: %d finding(s) in %d package(s)\n", total, len(reports))
	}
	return err
}

// JSONDiagnostic is the serialized form of one finding.
type JSONDiagnostic struct {
	Package    string    `json:"package"`
	File       string    `json:"file"`
	Line       int       `json:"line"`
	Col        int       `json:"col"`
	EndLine    int       `json:"end_line"`
	EndCol     int       `json:"end_col"`
	Code       string    `json:"code"`
	Message    string    `json:"message"`
	Straddles  int64     `json:"straddles,omitempty"`
	Boundaries int64     `json:"boundaries,omitempty"`
	LineSize   int64     `json:"line_size"`
	Cycles     float64   `json:"cycles,omitempty"`
	Exact      bool      `json:"exact"`
	Fixes      []JSONFix `json:"fixes,omitempty"`
}

// JSONFix is the serialized form of one verified suggested fix.
type JSONFix struct {
	Message string     `json:"message"`
	Edits   []JSONEdit `json:"edits"`
}

// JSONEdit is one textual edit as file offsets and positions.
type JSONEdit struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	EndLine int    `json:"end_line"`
	EndCol  int    `json:"end_col"`
	NewText string `json:"new_text"`
}

// MarshalDiagnostics flattens reports into the JSON form.
func MarshalDiagnostics(reports []PackageReport) []JSONDiagnostic {
	out := []JSONDiagnostic{}
	for _, r := range reports {
		for _, d := range r.Diags {
			pos := r.Pass.Fset.Position(d.Pos)
			end := r.Pass.Fset.Position(d.End)
			jd := JSONDiagnostic{
				Package: r.Path,
				File:    pos.Filename, Line: pos.Line, Col: pos.Column,
				EndLine: end.Line, EndCol: end.Column,
				Code: d.Code, Message: d.Message,
				Straddles: d.Straddles, Boundaries: d.Boundaries,
				LineSize: d.LineSize, Cycles: d.Cycles, Exact: d.Exact,
			}
			for _, fix := range d.Fixes {
				jf := JSONFix{Message: fix.Message}
				for _, e := range fix.Edits {
					ep := r.Pass.Fset.Position(e.Pos)
					ee := r.Pass.Fset.Position(e.End)
					jf.Edits = append(jf.Edits, JSONEdit{
						File: ep.Filename, Line: ep.Line, Col: ep.Column,
						EndLine: ee.Line, EndCol: ee.Column, NewText: e.NewText,
					})
				}
				jd.Fixes = append(jd.Fixes, jf)
			}
			out = append(out, jd)
		}
	}
	return out
}

// WriteJSON renders reports as an indented JSON array.
func WriteJSON(w io.Writer, reports []PackageReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MarshalDiagnostics(reports))
}

// Rules is fsvet's stable SARIF rule registry.
func Rules() []sarifwriter.Rule {
	return []sarifwriter.Rule{
		{ID: CodeHotLine, Description: "Concurrency-hot struct fields share a cache line"},
		{ID: CodeAdjacentWrites, Description: "Goroutine-per-index writes to adjacent sub-line slice elements false-share"},
		{ID: CodeUnpaddedShard, Description: "Indexed atomic operations on elements that are not a cache-line multiple"},
	}
}

// WriteSARIF renders the reports as one SARIF 2.1.0 run through the
// shared writer; all fsvet findings are warnings (layout hazards, not
// proven races).
func WriteSARIF(w io.Writer, reports []PackageReport) error {
	var results []sarifwriter.Result
	for _, r := range reports {
		for _, d := range r.Diags {
			pos := r.Pass.Fset.Position(d.Pos)
			end := r.Pass.Fset.Position(d.End)
			results = append(results, sarifwriter.Result{
				RuleID:  d.Code,
				Level:   sarifwriter.LevelWarning,
				Message: d.Message,
				URI:     pos.Filename,
				Region: sarifwriter.Region{
					StartLine: pos.Line, StartColumn: pos.Column,
					EndLine: end.Line, EndColumn: end.Column,
				},
			})
		}
	}
	return sarifwriter.Write(w, "fsvet", Rules(), results)
}

// ApplyFixes applies every verified fix in reports to the files on
// disk, returning the list of rewritten files. Edits within one file
// are applied back-to-front so earlier offsets stay valid; overlapping
// edits (two fixes touching the same span) keep the first and drop the
// rest.
func ApplyFixes(reports []PackageReport) ([]string, error) {
	perFile := make(map[string][]Edit)
	for _, r := range reports {
		for _, d := range r.Diags {
			for _, fix := range d.Fixes {
				if !fix.Verified {
					continue
				}
				for _, e := range fix.Edits {
					pos := r.Pass.Fset.Position(e.Pos)
					end := r.Pass.Fset.Position(e.End)
					perFile[pos.Filename] = append(perFile[pos.Filename], Edit{Off: pos.Offset, End: end.Offset, Text: e.NewText})
				}
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		patched, err := ApplyEditsToSource(src, perFile[f])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		// Re-format so an applied fix never leaves the file un-gofmt'd
		// (padding insertions disturb field alignment); a format failure
		// keeps the valid-but-unaligned splice.
		if pretty, err := format.Source(patched); err == nil {
			patched = pretty
		}
		if err := os.WriteFile(f, patched, 0o644); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// Edit is an offset-based text replacement within one file.
type Edit struct {
	Off, End int
	Text     string
}

// ApplyEditsToSource splices offset edits into src, back-to-front,
// dropping overlaps after the first. Exported for the corpus tests that
// verify a fix re-analyzes clean without touching disk.
func ApplyEditsToSource(src []byte, edits []Edit) ([]byte, error) {
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Off != edits[j].Off {
			return edits[i].Off > edits[j].Off
		}
		return edits[i].End > edits[j].End
	})
	edits = append([]Edit(nil), edits...)
	lastStart := len(src) + 1
	out := append([]byte(nil), src...)
	for _, e := range edits {
		if e.Off < 0 || e.End > len(src) || e.Off > e.End {
			return nil, fmt.Errorf("edit [%d,%d) outside source of %d bytes", e.Off, e.End, len(src))
		}
		if e.End > lastStart {
			continue // overlaps an already-applied edit
		}
		lastStart = e.Off
		out = append(out[:e.Off], append([]byte(e.Text), out[e.End:]...)...)
	}
	return out, nil
}
