package govet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Pass 1: struct layout. Every struct type declared in the package is
// laid out with the type checker's real sizes and alignment, hot fields
// are identified, and hot pairs that land on one cache line are flagged
// as GV001 — when two cores update them, each store invalidates the
// other core's cached copy even though the fields are logically
// unrelated.

// hotKind classifies why a field is concurrency-hot.
type hotKind int

const (
	hotAtomicType hotKind = iota // field's type is a sync/atomic value type
	hotAtomicCall                // field is addressed by a sync/atomic call
	hotMutex                     // field is a sync.Mutex / sync.RWMutex
)

func (k hotKind) String() string {
	switch k {
	case hotAtomicType:
		return "atomic"
	case hotAtomicCall:
		return "atomically updated"
	case hotMutex:
		return "mutex"
	}
	return "hot"
}

// hotField records one field's heat: the strongest kind seen and
// whether any classification implies cross-goroutine writes.
type hotField struct {
	kind    hotKind
	written bool
}

// hotSet maps field objects to their heat.
type hotSet map[*types.Var]hotField

// markHot records a field as hot, keeping written sticky.
func (h hotSet) markHot(v *types.Var, k hotKind, written bool) {
	f, ok := h[v]
	if !ok {
		h[v] = hotField{kind: k, written: written}
		return
	}
	f.written = f.written || written
	h[v] = f
}

// isAtomicValueType reports whether t is one of sync/atomic's value
// types (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Pointer[T],
// Value) — types that exist only to be mutated concurrently.
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex. Locking
// writes the mutex word, so a mutex next to an independently-updated
// atomic gets invalidated by every lock/unlock.
func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// atomicFuncWrites classifies a sync/atomic package-level function name:
// reported is whether the name is an atomic accessor at all, written
// whether it mutates its operand.
func atomicFuncWrites(name string) (written, reported bool) {
	switch {
	case len(name) >= 4 && name[:4] == "Load":
		return false, true
	case len(name) >= 3 && name[:3] == "Add",
		len(name) >= 5 && name[:5] == "Store",
		len(name) >= 4 && name[:4] == "Swap",
		len(name) >= 14 && name[:14] == "CompareAndSwap",
		len(name) >= 2 && name[:2] == "Or",
		len(name) >= 3 && name[:3] == "And":
		return true, true
	}
	return false, false
}

// selectedField resolves expr (after unwrapping parens and a leading &)
// to a struct field object, or nil.
func selectedField(info *types.Info, expr ast.Expr) *types.Var {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// collectHotFields walks the package once, classifying fields by type
// (atomic value types, mutexes) and by use (operands of sync/atomic
// calls on plain integer fields).
func collectHotFields(p *Pass) hotSet {
	hot := make(hotSet)
	// By use: atomic.AddInt64(&s.f, 1) and friends mark f hot even
	// though its declared type is a plain integer.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods are covered by the type classification
			}
			written, reported := atomicFuncWrites(fn.Name())
			if !reported {
				return true
			}
			if v := selectedField(p.Info, call.Args[0]); v != nil {
				hot.markHot(v, hotAtomicCall, written)
			}
			return true
		})
	}
	return hot
}

// structDecl is one struct type declared in the package with its AST.
type structDecl struct {
	name   *types.TypeName
	st     *types.Struct
	astTyp *ast.StructType
	// fieldPos[i] is the AST node declaring struct field i (for spans
	// and fix insertion points), parallel to st.Field ordering;
	// fieldDecl[i] is the enclosing *ast.Field (one Field can declare
	// several names).
	fieldPos  []ast.Node
	fieldDecl []*ast.Field
}

// packageStructs pairs every struct TypeSpec in the package with its
// type-checker object and per-field AST nodes. Declarations whose field
// count disagrees with the checked type (broken sources under partial
// type information) are skipped.
func packageStructs(p *Pass) []structDecl {
	var out []structDecl
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			spec, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			astTyp, ok := spec.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := p.Info.Defs[spec.Name].(*types.TypeName)
			if !ok {
				return true
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			var fieldPos []ast.Node
			var fieldDecl []*ast.Field
			for _, fld := range astTyp.Fields.List {
				if len(fld.Names) == 0 {
					fieldPos = append(fieldPos, fld) // embedded
					fieldDecl = append(fieldDecl, fld)
					continue
				}
				for _, name := range fld.Names {
					fieldPos = append(fieldPos, name)
					fieldDecl = append(fieldDecl, fld)
				}
			}
			if len(fieldPos) != st.NumFields() {
				return true
			}
			out = append(out, structDecl{name: tn, st: st, astTyp: astTyp, fieldPos: fieldPos, fieldDecl: fieldDecl})
			return true
		})
	}
	return out
}

// layoutOf computes field offsets and sizes; it returns ok=false when
// any field's size cannot be computed (invalid types under partial
// checking).
func layoutOf(sizes types.Sizes, st *types.Struct) (offs, szs []int64, ok bool) {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
		if fields[i].Type() == types.Typ[types.Invalid] {
			return nil, nil, false
		}
	}
	defer func() {
		if recover() != nil {
			offs, szs, ok = nil, nil, false
		}
	}()
	offs = sizes.Offsetsof(fields)
	szs = make([]int64, n)
	for i, f := range fields {
		szs[i] = sizes.Sizeof(f.Type())
	}
	return offs, szs, true
}

// structHeat resolves the heat of each field of st: use-based heat from
// the hot set, plus type-based heat.
func structHeat(hot hotSet, st *types.Struct) map[int]hotField {
	heat := make(map[int]hotField)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if h, ok := hot[f]; ok {
			heat[i] = h
		}
		switch {
		case isAtomicValueType(f.Type()):
			// Atomic value types exist to be mutated across goroutines.
			heat[i] = hotField{kind: hotAtomicType, written: true}
		case isMutexType(f.Type()):
			heat[i] = hotField{kind: hotMutex, written: true}
		}
	}
	return heat
}

// runLayout is pass 1: GV001 over every declared struct.
func runLayout(p *Pass, hot hotSet) {
	m := p.machineOrDefault()
	L := m.LineSize
	for _, sd := range packageStructs(p) {
		heat := structHeat(hot, sd.st)
		if len(heat) < 2 {
			continue
		}
		offs, szs, ok := layoutOf(p.Sizes, sd.st)
		if !ok {
			continue
		}
		var hotIdx []int
		for i := 0; i < sd.st.NumFields(); i++ {
			if _, ok := heat[i]; ok {
				hotIdx = append(hotIdx, i)
			}
		}
		for a := 0; a < len(hotIdx); a++ {
			for b := a + 1; b < len(hotIdx); b++ {
				i, j := hotIdx[a], hotIdx[b]
				hi, hj := heat[i], heat[j]
				if !hi.written && !hj.written {
					continue // two read-only fields never invalidate each other
				}
				if !m.RangesShareLine(offs[i], szs[i], offs[j], szs[j]) {
					continue
				}
				fi, fj := sd.st.Field(i), sd.st.Field(j)
				d := Diagnostic{
					Pos:      sd.fieldPos[j].Pos(),
					End:      sd.fieldPos[j].End(),
					Code:     CodeHotLine,
					LineSize: L,
					Exact:    true,
					Message: fmt.Sprintf(
						"%s.%s (%s, offset %d, %dB) shares a %dB cache line with hot field %s (%s, offset %d, %dB); concurrent updates will ping-pong the line",
						sd.name.Name(), fj.Name(), hj.kind, offs[j], szs[j], L,
						fi.Name(), hi.kind, offs[i], szs[i]),
				}
				if fix, ok := padBetweenFix(p, sd, heat, i, j, offs); ok {
					d.Fixes = append(d.Fixes, fix)
				}
				p.report(d)
			}
		}
	}
}
