package govet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/guard"
	"repro/internal/machine"
)

// go vet -vettool protocol. The go command drives a vet tool through a
// small, documented contract (the same one x/tools' unitchecker
// implements): first `tool -V=full` for a cache key, then one
// invocation per package unit with the path of a JSON .cfg file
// describing the unit — source files, the import map, and the export
// data file for every dependency, all prepared by the go command. The
// tool type-checks the unit, runs its analysis, prints diagnostics as
// JSON keyed by package and analyzer, and writes the (for fsvet, empty)
// facts file the cfg names. Implementing the contract directly keeps
// fsvet stdlib-only while remaining `go vet -vettool=$(which fsvet)`
// compatible.

// vetConfig mirrors the fields of the go command's vet .cfg files that
// fsvet consumes (unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetInvocation reports whether args look like a go-vet-protocol
// invocation: a -V=full version probe, a -flags query, or a positional
// *.cfg unit file.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" {
			return true
		}
		if strings.HasSuffix(a, ".cfg") && !strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}

// VetMain handles one go-vet-protocol invocation and returns the
// process exit code. mach parameterizes the analysis (nil =
// machine.Paper48()). Mirroring unitchecker: by default diagnostics
// print as text on stderr and findings exit nonzero (cmd/go relays
// both); `go vet -json` forwards -json, switching to a JSON envelope
// on stdout with exit 0.
func VetMain(args []string, mach *machine.Desc, stdout, stderr io.Writer) int {
	var cfgPath string
	jsonOut := false
	for _, a := range args {
		flagArg := strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion(stdout)
			return 0
		case a == "-flags" || a == "--flags":
			// The go command validates `go vet` flags against this list.
			fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics on stdout"},`+
				`{"Name":"machine","Bool":false,"Usage":"machine model: paper48 (default), smalltest, modern16"},`+
				`{"Name":"line","Bool":false,"Usage":"cache-line size override in bytes"}]`)
			return 0
		case a == "-json" || a == "--json" || a == "-json=true" || a == "--json=true":
			jsonOut = true
		case strings.HasPrefix(flagArg, "machine="):
			m, err := machineByVetName(strings.TrimPrefix(flagArg, "machine="))
			if err != nil {
				fmt.Fprintln(stderr, "fsvet:", err)
				return 1
			}
			mach = m
		case strings.HasPrefix(flagArg, "line="):
			var line int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(flagArg, "line="), "%d", &line); err != nil {
				fmt.Fprintf(stderr, "fsvet: invalid -line: %v\n", err)
				return 1
			}
			base := mach
			if base == nil {
				base = machine.Paper48()
			}
			m, err := base.WithLineSize(line)
			if err != nil {
				fmt.Fprintln(stderr, "fsvet:", err)
				return 1
			}
			mach = m
		case strings.HasSuffix(a, ".cfg") && !strings.HasPrefix(a, "-"):
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "fsvet: vet protocol invocation without a .cfg file")
		return 1
	}
	code, err := runUnit(cfgPath, mach, jsonOut, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "fsvet:", err)
		return 1
	}
	return code
}

// machineByVetName resolves the vet-protocol -machine flag value.
func machineByVetName(name string) (*machine.Desc, error) {
	switch name {
	case "", "paper48":
		return machine.Paper48(), nil
	case "smalltest":
		return machine.SmallTest(), nil
	case "modern16":
		return machine.Modern16(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: paper48, smalltest, modern16)", name)
}

// printVersion emits the `name version ...` line the go command hashes
// into its action cache key; the executable digest makes rebuilt tools
// invalidate cached vet results.
func printVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "fsvet version devel buildID=%02x\n", h.Sum(nil))
}

// runUnit analyzes one vet unit: parse, type-check against the export
// data the go command prepared, analyze under guard, report, and write
// the facts file. The returned code is the process exit code (text
// mode exits 2 on findings, as unitchecker does).
func runUnit(cfgPath string, mach *machine.Desc, jsonOut bool, stdout, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The facts file must exist for the go command even though fsvet
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(f)
	})
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if f == nil {
			if cfg.SucceedOnTypecheckFailure {
				return reportVetDiagnostics(jsonOut, stdout, stderr, cfg, fset, nil)
			}
			return 1, perr
		}
		files = append(files, f)
	}
	pkg, info, _ := typecheck(fset, cfg.ImportPath, files, imp)
	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Sizes: gcSizes(), Machine: mach}
	diags, err := guard.Do1(func() ([]Diagnostic, error) { return Analyze(pass) })
	if err != nil {
		return 1, err
	}
	return reportVetDiagnostics(jsonOut, stdout, stderr, cfg, fset, diags)
}

// reportVetDiagnostics emits the findings in the mode the go command
// asked for and picks the exit code.
func reportVetDiagnostics(jsonOut bool, stdout, stderr io.Writer, cfg vetConfig, fset *token.FileSet, diags []Diagnostic) (int, error) {
	if jsonOut {
		return 0, writeVetDiagnostics(stdout, cfg, fset, diags)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Code, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// vetJSONDiagnostic is the diagnostic shape the go command parses from
// a vet tool's stdout.
type vetJSONDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// writeVetDiagnostics prints the unit's findings in the go command's
// JSON envelope: {"pkgID": {"analyzer": [diags]}}.
func writeVetDiagnostics(w io.Writer, cfg vetConfig, fset *token.FileSet, diags []Diagnostic) error {
	id := cfg.ID
	if id == "" {
		id = cfg.ImportPath
	}
	list := make([]vetJSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		list = append(list, vetJSONDiagnostic{
			Posn:    fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
			Message: d.Code + ": " + d.Message,
		})
	}
	out := map[string]map[string][]vetJSONDiagnostic{
		id: {FalseSharing.Name: list},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}
