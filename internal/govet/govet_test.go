package govet

import (
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
)

// stdImporterFor builds a std-export importer bound to fset. The first
// call pays one `go list -export`; the go command's build cache makes
// repeats cheap, and a probe failure is reported once.
var (
	stdImpOnce sync.Once
	stdImpErr  error
)

func stdImporterFor(t *testing.T, fset *token.FileSet) types.Importer {
	t.Helper()
	stdImpOnce.Do(func() {
		_, stdImpErr = StdImporter(token.NewFileSet(), "sync", "sync/atomic")
	})
	if stdImpErr != nil {
		t.Fatalf("std importer: %v", stdImpErr)
	}
	imp, err := StdImporter(fset, "sync", "sync/atomic")
	if err != nil {
		t.Fatalf("std importer: %v", err)
	}
	return imp
}

// analyzeSrc type-checks src as a single-file package and runs the
// analyzer with the given machine (nil = Paper48).
func analyzeSrc(t *testing.T, src string, m *machine.Desc) (*Pass, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	var imp types.Importer
	if strings.Contains(src, `"sync`) {
		imp = stdImporterFor(t, fset)
	}
	pass, errs, err := CheckSource(fset, "test.go", []byte(src), imp)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	for _, e := range errs {
		t.Logf("typecheck: %v", e)
	}
	pass.Machine = m
	diags, err := Analyze(pass)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return pass, diags
}

// codesOf extracts the diagnostic codes in order.
func codesOf(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

// applyFirstFix applies the first verified fix of the first diagnostic
// carrying one to src and returns the patched source.
func applyFirstFix(t *testing.T, pass *Pass, src string, ds []Diagnostic) string {
	t.Helper()
	for _, d := range ds {
		for _, fix := range d.Fixes {
			if !fix.Verified {
				t.Fatalf("unverified fix emitted: %q", fix.Message)
			}
			var edits []Edit
			for _, e := range fix.Edits {
				edits = append(edits, Edit{
					Off:  pass.Fset.Position(e.Pos).Offset,
					End:  pass.Fset.Position(e.End).Offset,
					Text: e.NewText,
				})
			}
			out, err := ApplyEditsToSource([]byte(src), edits)
			if err != nil {
				t.Fatalf("ApplyEditsToSource: %v", err)
			}
			return string(out)
		}
	}
	t.Fatalf("no fix to apply among %d diagnostics", len(ds))
	return ""
}

const srcHotPair = `package p

import "sync/atomic"

type Stats struct {
	produced atomic.Int64
	consumed atomic.Int64
}

var S Stats

func Bump() { S.produced.Add(1) }
`

func TestGV001HotAtomicPair(t *testing.T) {
	pass, ds := analyzeSrc(t, srcHotPair, nil)
	if len(ds) != 1 || ds[0].Code != CodeHotLine {
		t.Fatalf("want one GV001, got %v", codesOf(ds))
	}
	d := ds[0]
	if !strings.Contains(d.Message, "consumed") || !strings.Contains(d.Message, "produced") {
		t.Errorf("message should name both fields: %q", d.Message)
	}
	if d.LineSize != 64 {
		t.Errorf("LineSize = %d, want 64", d.LineSize)
	}
	if len(d.Fixes) != 1 || !d.Fixes[0].Verified {
		t.Fatalf("want one verified fix, got %+v", d.Fixes)
	}
	patched := applyFirstFix(t, pass, srcHotPair, ds)
	_, ds2 := analyzeSrc(t, patched, nil)
	if len(ds2) != 0 {
		t.Errorf("patched source still flagged: %v\n%s", codesOf(ds2), patched)
	}
}

func TestGV001MutexNextToAtomic(t *testing.T) {
	src := `package p

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu   sync.Mutex
	hits atomic.Int64
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 || ds[0].Code != CodeHotLine {
		t.Fatalf("want one GV001, got %v", codesOf(ds))
	}
}

func TestGV001AtomicCallOnPlainInt(t *testing.T) {
	src := `package p

import "sync/atomic"

type C struct {
	a int64
	b int64
}

var c C

func Bump() {
	atomic.AddInt64(&c.a, 1)
	atomic.AddInt64(&c.b, 1)
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 || ds[0].Code != CodeHotLine {
		t.Fatalf("want one GV001, got %v", codesOf(ds))
	}
}

func TestGV001LoadOnlyPairIsClean(t *testing.T) {
	src := `package p

import "sync/atomic"

type C struct {
	a int64
	b int64
}

var c C

func Peek() (int64, int64) {
	return atomic.LoadInt64(&c.a), atomic.LoadInt64(&c.b)
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 0 {
		t.Fatalf("two read-only fields must not be flagged, got %v", codesOf(ds))
	}
}

func TestGV001PaddedPairIsClean(t *testing.T) {
	src := `package p

import "sync/atomic"

type Stats struct {
	produced atomic.Int64
	_        [120]byte
	consumed atomic.Int64
	_        [120]byte
}
`
	for _, line := range []int64{64, 128} {
		m, err := machine.Paper48().WithLineSize(line)
		if err != nil {
			t.Fatal(err)
		}
		_, ds := analyzeSrc(t, src, m)
		if len(ds) != 0 {
			t.Errorf("L=%d: padded struct flagged: %v", line, codesOf(ds))
		}
	}
}

const srcFanout = `package p

type rec struct {
	sum  int64
	hits int64
}

var results = make([]rec, 1024)

func Run() {
	for i := 0; i < 1024; i++ {
		go func(i int) {
			results[i].sum = int64(i)
		}(i)
	}
}
`

func TestGV002FanoutWrites(t *testing.T) {
	pass, ds := analyzeSrc(t, srcFanout, nil)
	if len(ds) != 1 || ds[0].Code != CodeAdjacentWrites {
		t.Fatalf("want one GV002, got %v", codesOf(ds))
	}
	d := ds[0]
	if !d.Exact {
		t.Errorf("constant trip count should be exact")
	}
	if d.Straddles == 0 || d.Boundaries != 1023 {
		t.Errorf("straddles=%d boundaries=%d, want nonzero/1023", d.Straddles, d.Boundaries)
	}
	if d.Cycles <= 0 {
		t.Errorf("cycles should be positive, got %v", d.Cycles)
	}
	if len(d.Fixes) != 1 {
		t.Fatalf("want element-padding fix, got %+v", d.Fixes)
	}
	patched := applyFirstFix(t, pass, srcFanout, ds)
	_, ds2 := analyzeSrc(t, patched, nil)
	if len(ds2) != 0 {
		t.Errorf("patched source still flagged: %v\n%s", codesOf(ds2), patched)
	}
}

func TestGV002RangeFanout(t *testing.T) {
	src := `package p

var out = make([]int32, 4096)
var in = make([]int32, 4096)

func Run() {
	for i := range out {
		go func() {
			out[i] = in[i] * 2
		}()
	}
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 || ds[0].Code != CodeAdjacentWrites {
		t.Fatalf("want one GV002, got %v", codesOf(ds))
	}
	if ds[0].Exact {
		t.Errorf("slice range has unknown trips; finding should be inexact")
	}
}

func TestGV002PaddedElementClean(t *testing.T) {
	src := `package p

type slot struct {
	sum int64
	_   [120]byte
}

var results = make([]slot, 1024)

func Run() {
	for i := 0; i < 1024; i++ {
		go func(i int) {
			results[i].sum = int64(i)
		}(i)
	}
}
`
	for _, line := range []int64{64, 128} {
		m, err := machine.Paper48().WithLineSize(line)
		if err != nil {
			t.Fatal(err)
		}
		_, ds := analyzeSrc(t, src, m)
		if len(ds) != 0 {
			t.Errorf("L=%d: padded element flagged: %v", line, codesOf(ds))
		}
	}
}

func TestGV002SequentialLoopNotFlagged(t *testing.T) {
	src := `package p

var results = make([]int64, 1024)

func Run() {
	for i := 0; i < 1024; i++ {
		results[i] = int64(i)
	}
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 0 {
		t.Fatalf("sequential writes must not be flagged, got %v", codesOf(ds))
	}
}

const srcShards = `package p

import "sync/atomic"

type shard struct {
	n int64
}

var shards [48]shard

func Inc(i int) {
	atomic.AddInt64(&shards[i].n, 1)
}
`

func TestGV003ShardedCounter(t *testing.T) {
	pass, ds := analyzeSrc(t, srcShards, nil)
	if len(ds) != 1 || ds[0].Code != CodeUnpaddedShard {
		t.Fatalf("want one GV003, got %v", codesOf(ds))
	}
	d := ds[0]
	if !d.Exact || d.Boundaries != 47 {
		t.Errorf("array shard count is exact with 47 boundaries; got exact=%v boundaries=%d", d.Exact, d.Boundaries)
	}
	patched := applyFirstFix(t, pass, srcShards, ds)
	_, ds2 := analyzeSrc(t, patched, nil)
	if len(ds2) != 0 {
		t.Errorf("patched source still flagged: %v\n%s", codesOf(ds2), patched)
	}
}

func TestGV003AtomicMethodForm(t *testing.T) {
	src := `package p

import "sync/atomic"

type shard struct {
	n atomic.Int64
}

var shards = make([]shard, 0)

func Inc(i int) {
	shards[i].n.Add(1)
}
`
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 || ds[0].Code != CodeUnpaddedShard {
		t.Fatalf("want one GV003, got %v", codesOf(ds))
	}
	if ds[0].Exact {
		t.Errorf("slice shard count is core-assumed; finding should be inexact")
	}
}

func TestGV003LineMultipleElementClean(t *testing.T) {
	src := `package p

import "sync/atomic"

type shard struct {
	n atomic.Int64
	_ [120]byte
}

var shards [48]shard

func Inc(i int) {
	shards[i].n.Add(1)
}
`
	for _, line := range []int64{64, 128} {
		m, err := machine.Paper48().WithLineSize(line)
		if err != nil {
			t.Fatal(err)
		}
		_, ds := analyzeSrc(t, src, m)
		if len(ds) != 0 {
			t.Errorf("L=%d: padded shard flagged: %v", line, codesOf(ds))
		}
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := strings.Replace(srcShards, "\tatomic.AddInt64(&shards[i].n, 1)",
		"\t//fsvet:ignore GV003 shards are write-once at startup\n\tatomic.AddInt64(&shards[i].n, 1)", 1)
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 0 {
		t.Fatalf("justified ignore must suppress, got %v", codesOf(ds))
	}
}

func TestIgnoreWithoutReasonIneffective(t *testing.T) {
	src := strings.Replace(srcShards, "\tatomic.AddInt64(&shards[i].n, 1)",
		"\t//fsvet:ignore GV003\n\tatomic.AddInt64(&shards[i].n, 1)", 1)
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 {
		t.Fatalf("reason-less ignore must not suppress, got %v", codesOf(ds))
	}
}

func TestIgnoreWrongCodeIneffective(t *testing.T) {
	src := strings.Replace(srcShards, "\tatomic.AddInt64(&shards[i].n, 1)",
		"\t//fsvet:ignore GV001 wrong code\n\tatomic.AddInt64(&shards[i].n, 1)", 1)
	_, ds := analyzeSrc(t, src, nil)
	if len(ds) != 1 {
		t.Fatalf("wrong-code ignore must not suppress, got %v", codesOf(ds))
	}
}

func TestAnalyzeLine128(t *testing.T) {
	// A 64B element is clean at L=64 but flagged at L=128 when the
	// stride no longer divides the line.
	src := `package p

type slot struct {
	sum int64
	_   [56]byte
}

var results = make([]slot, 1024)

func Run() {
	for i := 0; i < 1024; i++ {
		go func(i int) {
			results[i].sum = int64(i)
		}(i)
	}
}
`
	_, ds64 := analyzeSrc(t, src, nil)
	if len(ds64) != 0 {
		t.Fatalf("L=64: 64B element should be clean, got %v", codesOf(ds64))
	}
	m128, err := machine.Paper48().WithLineSize(128)
	if err != nil {
		t.Fatal(err)
	}
	_, ds128 := analyzeSrc(t, src, m128)
	if len(ds128) != 1 || ds128[0].Code != CodeAdjacentWrites {
		t.Fatalf("L=128: want one GV002, got %v", codesOf(ds128))
	}
	// At L=128 only every second boundary is interior to a line.
	if ds128[0].Straddles != ds128[0].Boundaries/2 && ds128[0].Straddles != (ds128[0].Boundaries+1)/2 {
		t.Errorf("L=128 straddles = %d of %d, want about half", ds128[0].Straddles, ds128[0].Boundaries)
	}
}

func TestBrokenSourceDoesNotPanic(t *testing.T) {
	srcs := []string{
		"package p\nfunc f() { undeclared[i] = 1 }",
		"package p\ntype T struct { x notatype }",
		"package p\nimport \"nosuchpackage\"\nvar x = nosuchpackage.Y",
		"package p\nfunc f() {\n\tfor i := 0; i < n; i++ {\n\t\tgo func() { dst[i] = 1 }()\n\t}\n}",
	}
	for _, src := range srcs {
		fset := token.NewFileSet()
		pass, _, err := CheckSource(fset, "broken.go", []byte(src), nil)
		if err != nil {
			t.Fatalf("CheckSource(%q): %v", src, err)
		}
		if _, err := Analyze(pass); err != nil {
			t.Errorf("Analyze(%q): %v", src, err)
		}
	}
}

func TestApplyEditsToSource(t *testing.T) {
	src := []byte("abcdef")
	out, err := ApplyEditsToSource(src, []Edit{
		{Off: 2, End: 2, Text: "XX"},
		{Off: 4, End: 5, Text: "Y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "abXXcdYf" {
		t.Errorf("got %q, want %q", got, "abXXcdYf")
	}
	if string(src) != "abcdef" {
		t.Errorf("input mutated to %q", src)
	}
	if _, err := ApplyEditsToSource(src, []Edit{{Off: -1, End: 0}}); err == nil {
		t.Error("negative offset must error")
	}
	// Overlapping edits: first (rightmost) wins, second dropped.
	out, err = ApplyEditsToSource(src, []Edit{
		{Off: 1, End: 4, Text: "A"},
		{Off: 2, End: 5, Text: "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "abBf" {
		t.Errorf("overlap: got %q, want %q", got, "abBf")
	}
}
