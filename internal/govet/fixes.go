package govet

import (
	"fmt"
	"go/types"
)

// Pass 3: verified suggested fixes. A fix is only attached to a
// diagnostic after the patched type has been synthesized with go/types
// and the layout analysis re-run on it proves the sharing is gone —
// fsvet never suggests an edit it has not re-checked, mirroring the
// verify-before-suggest contract of the mini-C analyzer's
// FIX-CHUNK/FIX-PAD pass.

// byteArray returns the [n]byte padding type.
func byteArray(n int64) types.Type {
	return types.NewArray(types.Typ[types.Byte], n)
}

// sharesAfter recomputes which index pairs of hot fields share a line
// for an arbitrary synthesized field list.
func sharesAfter(p *Pass, fields []*types.Var, hotIdx []int) (map[[2]int]bool, bool) {
	m := p.machineOrDefault()
	st := types.NewStruct(fields, nil)
	offs, szs, ok := layoutOf(p.Sizes, st)
	if !ok {
		return nil, false
	}
	shares := make(map[[2]int]bool)
	for a := 0; a < len(hotIdx); a++ {
		for b := a + 1; b < len(hotIdx); b++ {
			i, j := hotIdx[a], hotIdx[b]
			if m.RangesShareLine(offs[i], szs[i], offs[j], szs[j]) {
				shares[[2]int{i, j}] = true
			}
		}
	}
	return shares, true
}

// padBetweenFix builds the GV001 fix: insert a `_ [pad]byte` field
// immediately before hot field j so it starts on a fresh cache line.
// The fix is verified by re-running the layout analysis on the patched
// type: the (i, j) pair must no longer share, and no hot pair that was
// clean before may share after (padding shifts every later field, so
// this is checked, not assumed).
func padBetweenFix(p *Pass, sd structDecl, heat map[int]hotField, i, j int, offs []int64) (SuggestedFix, bool) {
	m := p.machineOrDefault()
	L := m.LineSize
	pad := L - offs[j]%L
	if pad <= 0 || pad >= L {
		return SuggestedFix{}, false
	}
	// The insertion point must be a whole declaration: a fix cannot
	// split `a, b atomic.Int64`.
	decl := sd.fieldDecl[j]
	if len(decl.Names) > 0 && sd.fieldPos[j] != decl.Names[0] {
		return SuggestedFix{}, false
	}

	n := sd.st.NumFields()
	var hotIdx []int
	fields := make([]*types.Var, 0, n+1)
	for k := 0; k < n; k++ {
		if k == j {
			fields = append(fields, types.NewField(0, p.Pkg, "_", byteArray(pad), false))
		}
		f := sd.st.Field(k)
		fields = append(fields, types.NewField(0, p.Pkg, f.Name(), f.Type(), f.Embedded()))
	}
	// Hot indices in the patched field list: +1 for everything at or
	// after the inserted pad.
	shift := func(k int) int {
		if k >= j {
			return k + 1
		}
		return k
	}
	for k := range heat {
		hotIdx = append(hotIdx, shift(k))
	}
	before := make(map[[2]int]bool)
	{
		offs0, szs0, ok := layoutOf(p.Sizes, sd.st)
		if !ok {
			return SuggestedFix{}, false
		}
		for a := range heat {
			for b := range heat {
				if a < b && m.RangesShareLine(offs0[a], szs0[a], offs0[b], szs0[b]) {
					before[[2]int{shift(a), shift(b)}] = true
				}
			}
		}
	}
	after, ok := sharesAfter(p, fields, hotIdx)
	if !ok {
		return SuggestedFix{}, false
	}
	target := [2]int{shift(i), shift(j)}
	if after[target] {
		return SuggestedFix{}, false // padding did not separate the pair
	}
	for pair := range after {
		if !before[pair] {
			return SuggestedFix{}, false // fix would create new sharing
		}
	}
	return SuggestedFix{
		Message: fmt.Sprintf("insert %d bytes of padding so %s starts on its own %dB cache line", pad, sd.st.Field(j).Name(), L),
		Edits: []TextEdit{{
			Pos:     decl.Pos(),
			End:     decl.Pos(),
			NewText: fmt.Sprintf("_ [%d]byte // fsvet: keep %s off %s's cache line\n\t", pad, sd.st.Field(j).Name(), sd.st.Field(i).Name()),
		}},
		Verified: true,
	}, true
}

// padElementFix builds the GV002/GV003 fix: append `_ [pad]byte` to the
// element struct so its size becomes a cache-line multiple and adjacent
// elements can never share a line. Verified by synthesizing the padded
// struct and re-checking both the size and the closed-form straddle
// count. Only possible when the element is a named struct declared in
// the analyzed package.
func padElementFix(p *Pass, elem types.Type) (SuggestedFix, bool) {
	m := p.machineOrDefault()
	L := m.LineSize
	named, ok := elem.(*types.Named)
	if !ok {
		return SuggestedFix{}, false
	}
	var sd structDecl
	found := false
	for _, cand := range packageStructs(p) {
		if cand.name == named.Obj() {
			sd, found = cand, true
			break
		}
	}
	if !found {
		return SuggestedFix{}, false
	}
	size := safeSizeof(p.Sizes, elem)
	if size <= 0 {
		return SuggestedFix{}, false
	}
	pad := m.PadToLine(size)
	if pad == 0 {
		return SuggestedFix{}, false
	}
	// Synthesize the padded struct and verify.
	n := sd.st.NumFields()
	fields := make([]*types.Var, 0, n+1)
	for k := 0; k < n; k++ {
		f := sd.st.Field(k)
		fields = append(fields, types.NewField(0, p.Pkg, f.Name(), f.Type(), f.Embedded()))
	}
	fields = append(fields, types.NewField(0, p.Pkg, "_", byteArray(pad), false))
	newSize := safeSizeof(p.Sizes, types.NewStruct(fields, nil))
	if newSize <= 0 || newSize%L != 0 {
		return SuggestedFix{}, false
	}
	// Re-run the closed-form score on the padded stride: with the worst
	// case (whole old element written), the straddle count must be zero.
	if s, _ := straddleCount(newSize, 0, size, L, p.AssumedTrips); s != 0 {
		return SuggestedFix{}, false
	}

	closing := sd.astTyp.Fields.Closing
	text := fmt.Sprintf("\t_ [%d]byte // fsvet: pad %s to a %dB-line multiple\n", pad, named.Obj().Name(), L)
	if list := sd.astTyp.Fields.List; len(list) > 0 {
		last := list[len(list)-1]
		if p.Fset.Position(last.End()).Line == p.Fset.Position(closing).Line {
			text = "\n" + text // single-line struct literal: break the line first
		}
	}
	return SuggestedFix{
		Message: fmt.Sprintf("pad %s from %d to %d bytes (a %dB-line multiple) so adjacent elements never share a line", named.Obj().Name(), size, newSize, L),
		Edits: []TextEdit{{
			Pos:     closing,
			End:     closing,
			NewText: text,
		}},
		Verified: true,
	}, true
}

// safeSizeof is Sizeof with panic isolation for invalid types under
// partial type information.
func safeSizeof(sizes types.Sizes, t types.Type) (size int64) {
	defer func() {
		if recover() != nil {
			size = -1
		}
	}()
	return sizes.Sizeof(t)
}
