// Package govet transplants the repository's compile-time false-sharing
// cost model from the mini-C dialect onto Go source: a multi-pass
// analyzer over type-checked go/ast packages that decides, from struct
// layouts and goroutine fan-out shapes alone, which memory the program
// will ping-pong between cores — no execution, no simulation.
//
// The passes, in order:
//
//  1. Layout (GV001, layout.go): compute every in-package struct's field
//     offsets with real go/types sizes and alignment against the
//     machine's cache-line size, classify fields as concurrency-hot
//     (sync/atomic value types, fields addressed by sync/atomic calls,
//     mutexes), and flag hot pairs whose byte ranges land on one line —
//     each updater's store invalidates the other's cached copy.
//  2. Fan-out (GV002/GV003, fanout.go): recognize the canonical
//     goroutine fan-out shapes — `for i := ... { go func(i) { dst[i] = v
//     } }` loops, per-worker slice-of-struct state, and indexed atomic
//     shard counters — and score them with the same closed-form residue
//     machinery the mini-C analyzer uses: the write at index k covers an
//     affine byte range, so the count of adjacent-index boundaries that
//     share a cache line is an affine.CountResidueAtLeast residue count,
//     independent of the trip count.
//  3. Fixes (fixes.go): emit suggested fixes — insert inter-field
//     padding (GV001) or append element padding to a line multiple
//     (GV002/GV003) — each verified by synthesizing the patched struct
//     type and re-running the layout analysis on it before the fix is
//     suggested.
//
// Diagnostics carry token.Pos..End spans and render as vet-style text,
// JSON, or SARIF 2.1.0 through the shared internal/analysis/sarifwriter.
// `//fsvet:ignore CODE reason` on the finding's line (or the line above)
// suppresses it; the justification is mandatory.
package govet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/machine"
)

// Diagnostic codes, stable across releases (documented in docs/GOVET.md).
const (
	// CodeHotLine flags two concurrency-hot struct fields laid out on one
	// cache line.
	CodeHotLine = "GV001"
	// CodeAdjacentWrites flags goroutine-per-index writes to adjacent
	// sub-line slice or array elements.
	CodeAdjacentWrites = "GV002"
	// CodeUnpaddedShard flags indexed atomic operations on slice/array
	// elements whose size is not a cache-line multiple (sharded counters
	// without padding).
	CodeUnpaddedShard = "GV003"
)

// TextEdit replaces the range [Pos, End) with NewText (Pos == End is a
// pure insertion).
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is one verified repair: applying Edits removes the
// diagnostic. Fixes are only attached after re-running the layout
// analysis on the synthesized patched type proves the sharing is gone,
// so Verified is always true on emitted fixes; it exists so renderers
// and -fix can assert the invariant cheaply.
type SuggestedFix struct {
	Message  string
	Edits    []TextEdit
	Verified bool
}

// Diagnostic is one finding with a stable code and a token span.
type Diagnostic struct {
	Pos, End token.Pos
	Code     string
	Message  string
	// Straddles of Boundaries adjacent-index pairs land on one line
	// (GV002/GV003); zero-valued for layout findings.
	Straddles  int64
	Boundaries int64
	// LineSize echoes the analyzed geometry; Cycles is the modeled
	// coherence cost (Equation 1's FS term) for fan-out findings.
	LineSize int64
	Cycles   float64
	// Exact is false when the score assumed a trip count for bounds
	// unknown at compile time.
	Exact bool
	Fixes []SuggestedFix
}

// Pass is one package's analysis context: syntax, type information and
// the machine model, plus the report sink. It mirrors
// golang.org/x/tools/go/analysis.Pass closely enough that the analyzer
// body would port directly, but is stdlib-only: the toolchain image
// carries no x/tools, so the driver protocol (load.go, vet.go) is
// implemented here from go/types and the documented go vet contract.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
	// Machine supplies line geometry and coherence latency
	// (nil = machine.Paper48()).
	Machine *machine.Desc
	// AssumedTrips substitutes for fan-out trip counts unknown at compile
	// time (0 = default 2048); such findings are marked inexact.
	AssumedTrips int64

	diags []Diagnostic
}

// Analyzer describes the tool in go/analysis terms: a name for output
// prefixes and a Run entry point over one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// FalseSharing is the analyzer: all three passes over one package.
var FalseSharing = &Analyzer{
	Name: "fsvet",
	Doc: "report memory layouts and goroutine fan-out shapes that false-share cache lines,\n" +
		"scored with the closed-form loop cost model (GV001 hot fields on one line,\n" +
		"GV002 adjacent per-goroutine writes, GV003 unpadded atomic shards)",
	Run: run,
}

// report appends one finding.
func (p *Pass) report(d Diagnostic) { p.diags = append(p.diags, d) }

// machineOrDefault resolves the pass's machine model.
func (p *Pass) machineOrDefault() *machine.Desc {
	if p.Machine == nil {
		p.Machine = machine.Paper48()
	}
	return p.Machine
}

// run executes the passes in order and filters ignored findings.
func run(p *Pass) error {
	m := p.machineOrDefault()
	if err := m.Validate(); err != nil {
		return fmt.Errorf("govet: %w", err)
	}
	if p.AssumedTrips <= 0 {
		p.AssumedTrips = 2048
	}
	if p.Info == nil {
		// Without type information no sizes can be computed; nothing to do.
		return nil
	}
	if p.Sizes == nil {
		p.Sizes = types.SizesFor("gc", "amd64")
	}
	hot := collectHotFields(p)
	runLayout(p, hot)
	runFanout(p)
	p.diags = filterIgnored(p, p.diags)
	sortDiagnostics(p.Fset, p.diags)
	return nil
}

// Analyze runs the FalseSharing analyzer over one package and returns
// its findings sorted by position. It is the entry every driver
// (standalone CLI, vet cfg mode, tests, fuzzer) funnels through.
func Analyze(p *Pass) ([]Diagnostic, error) {
	if err := FalseSharing.Run(p); err != nil {
		return nil, err
	}
	return p.diags, nil
}

// sortDiagnostics orders findings by file position, then code, then
// message, so output is byte-stable regardless of pass emission order.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}
