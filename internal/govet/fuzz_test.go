package govet

import (
	"go/token"
	"testing"
)

// FuzzAnalyzeGo is the robustness contract: for ANY input that the Go
// parser accepts (and any it rejects), CheckSource + Analyze must
// return normally — never panic — even under absent imports and broken
// type information. Fix synthesis runs as part of Analyze, so the
// verified-fix machinery is fuzzed too.
func FuzzAnalyzeGo(f *testing.F) {
	seeds := []string{
		// The corpus shapes, inlined so the fuzzer mutates from real
		// positives (imports resolve to nothing here; the type-based
		// classification still sees the names).
		"package p\n\nimport \"sync/atomic\"\n\ntype S struct {\n\ta atomic.Int64\n\tb atomic.Int64\n}\n",
		"package p\n\ntype r struct{ x, y int64 }\n\nvar d = make([]r, 64)\n\nfunc F() {\n\tfor i := 0; i < 64; i++ {\n\t\tgo func(i int) { d[i].x = 1 }(i)\n\t}\n}\n",
		"package p\n\nimport \"sync/atomic\"\n\ntype s struct{ n int64 }\n\nvar sh [8]s\n\nfunc F(i int) { atomic.AddInt64(&sh[i].n, 1) }\n",
		// Range forms, Go 1.22 int range, ignore directives.
		"package p\n\nvar d = make([]int32, 99)\n\nfunc F() {\n\tfor i := range d {\n\t\tgo func() { d[i] = 1 }()\n\t}\n}\n",
		"package p\n\nfunc F() {\n\tfor i := range 10 {\n\t\tgo func() { _ = i }()\n\t}\n}\n",
		"package p\n\n//fsvet:ignore GV002 because reasons\nvar x int\n",
		// Degenerate and broken shapes.
		"package p\n\ntype T struct{ _ [0]byte }\n",
		"package p\n\ntype T struct{ T }\n",
		"package p\n\nfunc f() { undeclared[i] = 1 }\n",
		"package p\n\ntype T struct { x notatype }\n",
		"package p\n\nvar a [1 << 40]struct{ x [1 << 20]byte }\n",
		"package p\n\nfunc f() {\n\tfor i := 0; ; i++ {\n\t\tgo func() { _ = i }()\n\t}\n}\n",
		"package p\n\ntype T struct {\n\ta, b int64\n}\n",
		"package  ",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		pass, _, err := CheckSource(fset, "fuzz.go", []byte(src), nil)
		if err != nil {
			return // unparseable: fine, as long as we got here without panic
		}
		diags, err := Analyze(pass)
		if err != nil {
			return
		}
		// Every emitted fix must be verified and have applicable edits.
		for _, d := range diags {
			for _, fix := range d.Fixes {
				if !fix.Verified {
					t.Fatalf("unverified fix emitted for %s", d.Code)
				}
				var edits []Edit
				for _, e := range fix.Edits {
					edits = append(edits, Edit{
						Off:  pass.Fset.Position(e.Pos).Offset,
						End:  pass.Fset.Position(e.End).Offset,
						Text: e.NewText,
					})
				}
				if _, err := ApplyEditsToSource([]byte(src), edits); err != nil {
					t.Fatalf("fix edits unappliable: %v", err)
				}
			}
		}
	})
}
