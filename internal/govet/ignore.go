package govet

import "strings"

// //fsvet:ignore directives. A finding is suppressed when a comment of
// the form
//
//	//fsvet:ignore GV002 one write per task, amortized by task cost
//
// appears on the finding's source line or the line immediately above it.
// The code must match the finding and the justification is mandatory:
// an ignore without a reason does not suppress anything, so every
// accepted ignore documents why the sharing is tolerable.

const ignorePrefix = "fsvet:ignore"

// ignoreDirective is one parsed, well-formed directive.
type ignoreDirective struct {
	code   string
	reason string
}

// parseIgnore extracts a directive from one comment's text, or ok=false.
func parseIgnore(text string) (ignoreDirective, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignorePrefix) {
		return ignoreDirective{}, false
	}
	rest := strings.TrimSpace(text[len(ignorePrefix):])
	code, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if !strings.HasPrefix(code, "GV") || reason == "" {
		return ignoreDirective{}, false // no code or no justification: ineffective
	}
	return ignoreDirective{code: code, reason: reason}, true
}

// ignoreKey identifies a file line.
type ignoreKey struct {
	file string
	line int
}

// collectIgnores indexes every well-formed directive by file and line.
func collectIgnores(p *Pass) map[ignoreKey][]ignoreDirective {
	out := make(map[ignoreKey][]ignoreDirective)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := ignoreKey{file: pos.Filename, line: pos.Line}
				out[k] = append(out[k], d)
			}
		}
	}
	return out
}

// filterIgnored drops findings covered by a directive on their line or
// the line above.
func filterIgnored(p *Pass, ds []Diagnostic) []Diagnostic {
	ignores := collectIgnores(p)
	if len(ignores) == 0 {
		return ds
	}
	kept := ds[:0]
	for _, d := range ds {
		pos := p.Fset.Position(d.Pos)
		if matchesIgnore(ignores, pos.Filename, pos.Line, d.Code) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func matchesIgnore(ignores map[ignoreKey][]ignoreDirective, file string, line int, code string) bool {
	for _, l := range []int{line, line - 1} {
		for _, d := range ignores[ignoreKey{file: file, line: l}] {
			if d.code == code {
				return true
			}
		}
	}
	return false
}

// ignoredCommentCount is a test hook: the number of well-formed
// directives in the files.
func ignoredCommentCount(p *Pass) int {
	n := 0
	for _, ds := range collectIgnores(p) {
		n += len(ds)
	}
	return n
}
