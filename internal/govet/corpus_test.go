package govet

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/machine"
)

// The golden corpus gate: examples/govet holds known-bad programs and
// their padded twins, and golden.json records exactly what fsvet must
// say about each. This test is the contract CI enforces — a detection
// or scoring regression shows up as a golden mismatch, not as silence.

const corpusDir = "../../examples/govet"

type goldenEntry struct {
	Code string `json:"code"`
	Line int    `json:"line"`
}

func loadGolden(t *testing.T) map[string][]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(corpusDir, "golden.json"))
	if err != nil {
		t.Fatalf("golden.json: %v", err)
	}
	var golden map[string][]goldenEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("golden.json: %v", err)
	}
	return golden
}

// analyzeCorpusFile runs the analyzer on one corpus file at the given
// line size.
func analyzeCorpusFile(t *testing.T, src []byte, line int64) (*Pass, []Diagnostic) {
	t.Helper()
	m, err := machine.Paper48().WithLineSize(line)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var imp = stdImporterFor(t, fset)
	pass, _, err := CheckSource(fset, "corpus.go", src, imp)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	pass.Machine = m
	diags, err := Analyze(pass)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return pass, diags
}

func TestCorpusGolden(t *testing.T) {
	golden := loadGolden(t)

	// Every .go file in the corpus must be covered by golden.json, and
	// vice versa — a new corpus file without expectations is an error.
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			onDisk[e.Name()] = true
			if _, ok := golden[e.Name()]; !ok {
				t.Errorf("%s has no golden.json entry", e.Name())
			}
		}
	}
	for name := range golden {
		if !onDisk[name] {
			t.Errorf("golden.json names missing file %s", name)
		}
	}

	names := make([]string, 0, len(golden))
	for name := range golden {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		want := golden[name]
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatal(err)
			}
			pass, ds := analyzeCorpusFile(t, src, 64)
			var got []goldenEntry
			for _, d := range ds {
				got = append(got, goldenEntry{Code: d.Code, Line: pass.Fset.Position(d.Pos).Line})
			}
			if len(got) != len(want) {
				t.Fatalf("got %+v, want %+v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("diag %d: got %+v, want %+v", i, got[i], want[i])
				}
			}

			if strings.HasPrefix(name, "clean_") {
				// Twins must also be clean at 128B lines.
				if _, ds128 := analyzeCorpusFile(t, src, 128); len(ds128) != 0 {
					t.Errorf("L=128: clean twin flagged: %v", codesOf(ds128))
				}
				return
			}

			// Known-bad files: every finding carries a verified fix, and
			// applying the fixes re-analyzes clean.
			for _, d := range ds {
				if len(d.Fixes) == 0 {
					t.Fatalf("%s finding has no suggested fix", d.Code)
				}
				for _, fix := range d.Fixes {
					if !fix.Verified {
						t.Errorf("%s fix not verified: %q", d.Code, fix.Message)
					}
				}
			}
			var edits []Edit
			for _, d := range ds {
				for _, e := range d.Fixes[0].Edits {
					edits = append(edits, Edit{
						Off:  pass.Fset.Position(e.Pos).Offset,
						End:  pass.Fset.Position(e.End).Offset,
						Text: e.NewText,
					})
				}
			}
			patched, err := ApplyEditsToSource(src, edits)
			if err != nil {
				t.Fatalf("applying fixes: %v", err)
			}
			if _, ds2 := analyzeCorpusFile(t, patched, 64); len(ds2) != 0 {
				t.Errorf("fixed source still flagged: %v\npatched:\n%s", codesOf(ds2), patched)
			}
		})
	}
}
