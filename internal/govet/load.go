package govet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Standalone package loading. The container carries no
// golang.org/x/tools, so fsvet cannot use go/packages; instead the
// loader shells out to `go list -export -deps -json`, which compiles
// (or reuses from the build cache) export data for every dependency,
// and type-checks each target package's sources against that export
// data with the standard library's gc importer. This is the same
// information flow `go vet` itself uses — vet.go implements the other
// half of that contract for -vettool mode.

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// LoadedPackage is one type-checked target package ready for analysis.
type LoadedPackage struct {
	Path string
	Pass *Pass
	// TypeErrors collects type-check problems; analysis proceeds on
	// partial information (fsvet is a linter, not a compiler).
	TypeErrors []error
}

// Load lists patterns with the go tool, type-checks every matched
// (non-dependency) package against compiler export data, and returns
// the packages ready for analysis. dir is the working directory ("" =
// current).
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,CgoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []listedPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var out2 []*LoadedPackage
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			continue // cgo packages need the full build pipeline; out of scope
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		lp, err := checkListed(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out2 = append(out2, lp)
	}
	return out2, nil
}

// exportImporter builds a types.Importer reading compiler export data
// through lookup.
func exportImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkListed parses and type-checks one listed package.
func checkListed(fset *token.FileSet, imp types.Importer, t listedPackage) (*LoadedPackage, error) {
	var files []*ast.File
	var typeErrs []error
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if f == nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			typeErrs = append(typeErrs, err)
		}
		files = append(files, f)
	}
	pkg, info, errs := typecheck(fset, t.ImportPath, files, imp)
	typeErrs = append(typeErrs, errs...)
	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Sizes: gcSizes()}
	return &LoadedPackage{Path: t.ImportPath, Pass: pass, TypeErrors: typeErrs}, nil
}

// gcSizes returns the gc compiler's size/alignment model for the host
// architecture — the layouts fsvet reasons about must be the layouts
// the binary will actually have.
func gcSizes() types.Sizes {
	s := types.SizesFor("gc", runtime.GOARCH)
	if s == nil {
		s = types.SizesFor("gc", "amd64")
	}
	return s
}

// typecheck runs go/types over files, tolerating errors: the returned
// info is as complete as checking got, which is what a linter wants for
// broken-but-parseable code.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    gcSizes(),
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := conf.Check(path, fset, files, info) // errors already collected
	return pkg, info, errs
}

// CheckSource parses and type-checks a single in-memory file as its own
// package with the given importer (nil = no imports resolvable; type
// errors are tolerated either way). It is the entry used by tests, the
// corpus gate, and the fuzzer.
func CheckSource(fset *token.FileSet, filename string, src []byte, imp types.Importer) (*Pass, []error, error) {
	f, perr := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if f == nil {
		return nil, nil, perr
	}
	var errs []error
	if perr != nil {
		errs = append(errs, perr)
	}
	if imp == nil {
		imp = failImporter{}
	}
	pkgName := f.Name.Name
	if pkgName == "" {
		pkgName = "p"
	}
	pkg, info, terrs := typecheck(fset, pkgName, []*ast.File{f}, imp)
	errs = append(errs, terrs...)
	return &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info, Sizes: gcSizes()}, errs, nil
}

// failImporter refuses every import; checking proceeds with partial
// information.
type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("imports unavailable (no importer): %q", path)
}

// StdImporter returns an importer for the standard library backed by
// `go list -export -deps` over the named std packages, suitable for
// CheckSource on files that import only those packages. It shells out
// once; callers should reuse the result.
func StdImporter(fset *token.FileSet, stdPackages ...string) (types.Importer, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, stdPackages...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(stdPackages, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exportImporter(fset, func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}), nil
}
