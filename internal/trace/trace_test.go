package trace

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/loopir"
	"repro/internal/minic"
	"repro/internal/sched"
)

func loadNest(t *testing.T, src string) *loopir.Nest {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit.Nests[0]
}

// bruteForce enumerates all (thread, iteration-values) pairs by replaying
// the loop semantics directly, returning per-thread streams.
func bruteForce(nest *loopir.Nest, plan sched.Plan) [][][]int64 {
	streams := make([][][]int64, plan.NumThreads)
	var rec func(level int, env map[string]int64, owner int)
	rec = func(level int, env map[string]int64, owner int) {
		if level == len(nest.Loops) {
			vals := make([]int64, len(nest.Loops))
			for i, l := range nest.Loops {
				vals[i] = env[l.Var]
			}
			streams[owner] = append(streams[owner], vals)
			return
		}
		l := nest.Loops[level]
		first := l.First.MustEval(env)
		limit := l.Limit.MustEval(env)
		trip := int64(0)
		for v := first; (l.Step > 0 && v < limit) || (l.Step < 0 && v > limit); v += l.Step {
			env[l.Var] = v
			o := owner
			if level == nest.ParLevel {
				o = plan.Owner(trip)
			}
			rec(level+1, env, o)
			trip++
		}
		delete(env, l.Var)
	}
	rec(0, map[string]int64{}, 0)
	return streams
}

func cursorStream(g *Generator, tid int) [][]int64 {
	var out [][]int64
	c := g.Cursor(tid)
	for c.Next() {
		vals := make([]int64, len(c.Vals()))
		copy(vals, c.Vals())
		out = append(out, vals)
	}
	return out
}

func checkAgainstBruteForce(t *testing.T, src string, threads int, chunk int64) {
	t.Helper()
	nest := loadNest(t, src)
	plan := sched.Plan{Kind: sched.Static, NumThreads: threads, Chunk: chunk}
	g, err := NewGenerator(nest, plan)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	want := bruteForce(nest, plan)
	for tid := 0; tid < threads; tid++ {
		got := cursorStream(g, tid)
		if !reflect.DeepEqual(got, want[tid]) {
			t.Fatalf("thread %d stream mismatch:\n got %v\nwant %v", tid, got, want[tid])
		}
	}
}

func TestCursorMatchesBruteForceOuterParallel(t *testing.T) {
	src := `
#define N 13
#define M 5
double a[N][M];
#pragma omp parallel for
for (j = 0; j < N; j++)
  for (i = 0; i < M; i++)
    a[j][i] = 1.0;
`
	for _, threads := range []int{1, 2, 3, 4} {
		for _, chunk := range []int64{1, 2, 5} {
			checkAgainstBruteForce(t, src, threads, chunk)
		}
	}
}

func TestCursorMatchesBruteForceInnerParallel(t *testing.T) {
	src := `
#define N 7
#define M 11
double a[N][M];
for (j = 0; j < N; j++)
  #pragma omp parallel for
  for (i = 0; i < M; i++)
    a[j][i] = 1.0;
`
	for _, threads := range []int{1, 2, 3, 5} {
		for _, chunk := range []int64{1, 2, 4} {
			checkAgainstBruteForce(t, src, threads, chunk)
		}
	}
}

func TestCursorMatchesBruteForceTriangular(t *testing.T) {
	src := `
#define N 9
double a[N][N];
#pragma omp parallel for
for (j = 0; j < N; j++)
  for (i = j; i < N; i++)
    a[j][i] = 1.0;
`
	for _, threads := range []int{1, 2, 3} {
		for _, chunk := range []int64{1, 3} {
			checkAgainstBruteForce(t, src, threads, chunk)
		}
	}
}

func TestCursorMatchesBruteForceTripleNest(t *testing.T) {
	src := `
#define A 3
#define B 4
#define C 5
double m[A][B][C];
for (x = 0; x < A; x++)
  #pragma omp parallel for
  for (y = 0; y < B; y++)
    for (z = 0; z < C; z++)
      m[x][y][z] = 1.0;
`
	for _, threads := range []int{2, 3} {
		checkAgainstBruteForce(t, src, threads, 1)
	}
}

func TestCursorDownwardLoop(t *testing.T) {
	src := `
#define N 10
double a[N];
#pragma omp parallel for
for (i = N - 1; i >= 0; i--)
    a[i] = 1.0;
`
	checkAgainstBruteForce(t, src, 3, 2)
}

func TestCursorZeroTripInner(t *testing.T) {
	// Inner loop has zero trips for j >= 4: cursor must skip cleanly.
	src := `
#define N 8
double a[N][N];
#pragma omp parallel for
for (j = 0; j < N; j++)
  for (i = j; i < 4; i++)
    a[j][i] = 1.0;
`
	checkAgainstBruteForce(t, src, 2, 1)
	checkAgainstBruteForce(t, src, 3, 2)
}

func TestCursorThreadsExceedWork(t *testing.T) {
	src := `
#define N 3
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 8, Chunk: 1}
	g, err := NewGenerator(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for tid := 0; tid < 8; tid++ {
		total += g.CountIterations(tid)
	}
	if total != 3 {
		t.Fatalf("total iterations = %d, want 3", total)
	}
	// Threads 3..7 must be empty.
	for tid := 3; tid < 8; tid++ {
		if g.CountIterations(tid) != 0 {
			t.Fatalf("thread %d should have no work", tid)
		}
	}
}

func TestGeneratorTotalsAndAccessors(t *testing.T) {
	src := `
#define N 12
double a[N];
double b[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] += b[i];
`
	nest := loadNest(t, src)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 4, Chunk: 2}
	g, err := NewGenerator(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalIterations() != 12 {
		t.Fatalf("total = %d", g.TotalIterations())
	}
	if g.NumRefs() != 3 || g.NumThreads() != 4 || g.Depth() != 1 {
		t.Fatalf("accessors wrong: %d refs, %d threads, depth %d", g.NumRefs(), g.NumThreads(), g.Depth())
	}
	if g.Plan() != plan || g.Nest() != nest {
		t.Fatal("plan/nest accessors wrong")
	}
}

func TestAccessesAddresses(t *testing.T) {
	src := `
#define N 8
double a[N];
double b[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = b[i];
`
	nest := loadNest(t, src)
	g, err := NewGenerator(nest, sched.Plan{Kind: sched.Static, NumThreads: 1, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs := g.Accesses([]int64{3}, nil)
	if len(accs) != 2 {
		t.Fatalf("accesses = %d", len(accs))
	}
	aSym, _ := nestSymbol(nest, "a")
	bSym, _ := nestSymbol(nest, "b")
	if accs[0].Addr != bSym+24 || accs[0].Write {
		t.Fatalf("read access = %+v", accs[0])
	}
	if accs[1].Addr != aSym+24 || !accs[1].Write {
		t.Fatalf("write access = %+v", accs[1])
	}
	if accs[0].Size != 8 {
		t.Fatalf("size = %d", accs[0].Size)
	}
}

func nestSymbol(nest *loopir.Nest, name string) (int64, bool) {
	for _, r := range nest.Refs {
		if r.Sym.Name == name {
			return r.Sym.Base, true
		}
	}
	return 0, false
}

func TestSequentialGenerator(t *testing.T) {
	src := `
#define N 6
double a[N][N];
for (j = 0; j < N; j++)
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`
	nest := loadNest(t, src)
	g, err := NewSequentialGenerator(nest)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CountIterations(0); got != 36 {
		t.Fatalf("sequential iterations = %d", got)
	}
	// Order must be row-major (j outer, i inner).
	c := g.Cursor(0)
	var prev []int64
	for c.Next() {
		if prev != nil {
			cur := c.Vals()
			if cur[0] < prev[0] || (cur[0] == prev[0] && cur[1] != prev[1]+1 && cur[1] != 0) {
				t.Fatalf("out of order: %v after %v", cur, prev)
			}
		}
		prev = append([]int64(nil), c.Vals()...)
	}
}

func TestSequentialGeneratorRejectsMultiThread(t *testing.T) {
	src := `
#define N 6
double a[N];
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	if _, err := NewGenerator(nest, sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 1}); err == nil {
		t.Fatal("expected error: no parallel level with multiple threads")
	}
}

func TestCursorParallelTripExposed(t *testing.T) {
	src := `
#define N 10
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 2}
	g, _ := NewGenerator(nest, plan)
	c := g.Cursor(1)
	var trips []int64
	for c.Next() {
		trips = append(trips, c.ParallelTrip())
	}
	want := []int64{2, 3, 6, 7}
	if fmt.Sprint(trips) != fmt.Sprint(want) {
		t.Fatalf("thread 1 trips = %v, want %v", trips, want)
	}
}

func TestNonAffineRefsSkipped(t *testing.T) {
	prog, err := minic.Parse(`
#define N 4
double a[N][N];
#pragma omp parallel for
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    a[i][i * j] = 1.0;
`)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(unit.Nests[0], sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Skipped) != 1 {
		t.Fatalf("skipped = %v", g.Skipped)
	}
	if g.NumRefs() != 0 {
		t.Fatalf("refs = %d, want 0", g.NumRefs())
	}
}

func BenchmarkCursorHeat(b *testing.B) {
	prog, err := minic.Parse(`
#define M 64
#define N 2048
double A[M][N];
double B[M][N];
for (j = 1; j < M - 1; j++)
  #pragma omp parallel for private(i)
  for (i = 1; i < N - 1; i++)
    B[j][i] = 0.25 * (A[j][i-1] + A[j][i+1] + A[j-1][i] + A[j+1][i]);
`)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGenerator(unit.Nests[0], sched.Plan{Kind: sched.Static, NumThreads: 8, Chunk: 1})
	if err != nil {
		b.Fatal(err)
	}
	var iters int64
	var buf []Access
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Cursor(i % 8)
		for c.Next() {
			buf = g.Accesses(c.Vals(), buf)
			iters++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(iters), "ns/iter")
}
