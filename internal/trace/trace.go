// Package trace turns a lowered loop nest plus a work-sharing plan into
// per-thread streams of memory accesses.
//
// The generator enumerates, for each thread, the innermost-loop iterations
// that thread executes under static round-robin chunk scheduling, in the
// order it executes them. The false-sharing cost model and the MESI cache
// simulator both consume these streams in lockstep: at global step k every
// thread performs the accesses of its k-th innermost iteration, which is
// how the paper models the concurrent interleaving of a statically
// scheduled OpenMP loop.
package trace

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/loopir"
	"repro/internal/sched"
)

// Access is a single memory reference performed by a thread.
type Access struct {
	Addr  int64
	Size  int32
	Write bool
	Ref   int32 // index of the originating loopir ref (into Generator.Refs)
}

type compiledLoop struct {
	first affine.Compiled
	limit affine.Compiled
	step  int64
}

type compiledRef struct {
	offset affine.Compiled
	base   int64
	size   int32
	write  bool
}

// Generator produces per-thread access streams for one nest.
type Generator struct {
	nest     *loopir.Nest
	plan     sched.Plan
	vars     []string
	loops    []compiledLoop
	refs     []compiledRef
	parLevel int
	// Skipped lists source strings of refs excluded because their
	// subscripts are non-affine.
	Skipped []string
}

// NewGenerator compiles the nest's bounds and reference offsets against the
// plan. The nest must have a parallelized level (use a 1-thread plan and a
// pragma-free nest via NewSequentialGenerator for serial enumeration).
func NewGenerator(nest *loopir.Nest, plan sched.Plan) (*Generator, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	parLevel := nest.ParLevel
	if parLevel < 0 {
		if plan.NumThreads != 1 {
			return nil, fmt.Errorf("trace: nest has no parallel level but plan has %d threads", plan.NumThreads)
		}
		parLevel = 0 // trivially "parallelized" across one thread
	}
	g := &Generator{nest: nest, plan: plan, vars: nest.Vars(), parLevel: parLevel}
	for _, l := range nest.Loops {
		first, err := l.First.Compile(g.vars)
		if err != nil {
			return nil, fmt.Errorf("trace: loop %q lower bound: %w", l.Var, err)
		}
		limit, err := l.Limit.Compile(g.vars)
		if err != nil {
			return nil, fmt.Errorf("trace: loop %q limit: %w", l.Var, err)
		}
		g.loops = append(g.loops, compiledLoop{first: first, limit: limit, step: l.Step})
	}
	for _, r := range nest.Refs {
		if r.NonAffine {
			g.Skipped = append(g.Skipped, r.Src)
			continue
		}
		off, err := r.Offset.Compile(g.vars)
		if err != nil {
			return nil, fmt.Errorf("trace: ref %s: %w", r.Src, err)
		}
		g.refs = append(g.refs, compiledRef{offset: off, base: r.Sym.Base, size: int32(r.Size), write: r.Write})
	}
	return g, nil
}

// NewSequentialGenerator enumerates the whole nest on a single thread,
// which is how the serial cache model and the interpreter traverse it.
func NewSequentialGenerator(nest *loopir.Nest) (*Generator, error) {
	plan := sched.Plan{Kind: sched.Static, NumThreads: 1, Chunk: 1}
	g, err := NewGenerator(nest, plan)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Plan returns the generator's work-sharing plan.
func (g *Generator) Plan() sched.Plan { return g.plan }

// Nest returns the underlying nest.
func (g *Generator) Nest() *loopir.Nest { return g.nest }

// NumRefs returns the number of analyzable (affine) references per
// innermost iteration.
func (g *Generator) NumRefs() int { return len(g.refs) }

// NumThreads returns the thread count of the plan.
func (g *Generator) NumThreads() int { return g.plan.NumThreads }

// Depth returns the nest depth.
func (g *Generator) Depth() int { return len(g.loops) }

// Accesses evaluates the reference addresses for one iteration's induction
// values, appending into buf (which it returns resliced). vals must be
// ordered like the nest's Vars().
func (g *Generator) Accesses(vals []int64, buf []Access) []Access {
	buf = buf[:0]
	for i := range g.refs {
		r := &g.refs[i]
		buf = append(buf, Access{
			Addr:  r.base + r.offset.Eval(vals),
			Size:  r.size,
			Write: r.write,
			Ref:   int32(i),
		})
	}
	return buf
}

// Cursor returns a fresh iteration cursor for thread t.
func (g *Generator) Cursor(t int) *ThreadCursor {
	return &ThreadCursor{g: g, thread: t, vals: make([]int64, len(g.loops)), lv: make([]levelState, len(g.loops))}
}

// Cursors returns one cursor per thread of the plan.
func (g *Generator) Cursors() []*ThreadCursor {
	out := make([]*ThreadCursor, g.plan.NumThreads)
	for t := range out {
		out[t] = g.Cursor(t)
	}
	return out
}

type levelState struct {
	first int64 // lower bound value at current instantiation
	n     int64 // trip count at current instantiation
	trip  int64 // current trip (sequential levels)
	j     int64 // owned-trip counter (parallel level only)
	k     int64 // current global trip (parallel level only)
}

// ThreadCursor enumerates the innermost iterations one thread executes, in
// execution order. Use Next to advance and Vals to read the induction
// values of the current iteration.
type ThreadCursor struct {
	g       *Generator
	thread  int
	vals    []int64
	lv      []levelState
	started bool
	done    bool
	count   int64
}

// Vals returns the current induction-variable values (aliased; do not
// mutate). Valid only after Next returned true.
func (c *ThreadCursor) Vals() []int64 { return c.vals }

// Thread returns the thread id this cursor enumerates.
func (c *ThreadCursor) Thread() int { return c.thread }

// Count returns the number of iterations yielded so far.
func (c *ThreadCursor) Count() int64 { return c.count }

// Done reports whether the cursor is exhausted.
func (c *ThreadCursor) Done() bool { return c.done }

// ParallelTrip returns the 0-based global trip index of the parallelized
// loop for the current iteration (used to derive chunk-run indices).
func (c *ThreadCursor) ParallelTrip() int64 { return c.lv[c.g.parLevel].k }

// instantiate positions level i at its first valid iteration given the
// current values of outer levels; it reports false if the level is empty.
func (c *ThreadCursor) instantiate(i int) bool {
	cl := &c.g.loops[i]
	st := &c.lv[i]
	st.first = cl.first.Eval(c.vals)
	limit := cl.limit.Eval(c.vals)
	st.n = tripCount(st.first, limit, cl.step)
	if i == c.g.parLevel {
		st.j = 0
		st.k = c.g.plan.OwnedTrip(c.thread, 0)
		if st.k >= st.n {
			return false
		}
		c.vals[i] = st.first + st.k*cl.step
		return true
	}
	if st.n == 0 {
		return false
	}
	st.trip = 0
	c.vals[i] = st.first
	return true
}

// step advances level i by one iteration; it reports false on exhaustion.
func (c *ThreadCursor) step(i int) bool {
	cl := &c.g.loops[i]
	st := &c.lv[i]
	if i == c.g.parLevel {
		st.j++
		st.k = c.g.plan.OwnedTrip(c.thread, st.j)
		if st.k >= st.n {
			return false
		}
		c.vals[i] = st.first + st.k*cl.step
		return true
	}
	st.trip++
	if st.trip >= st.n {
		return false
	}
	c.vals[i] += cl.step
	return true
}

// seek makes levels i..depth-1 all valid, backtracking through outer levels
// when an inner level is empty. It reports false when the thread's whole
// iteration space is exhausted.
func (c *ThreadCursor) seek(i int) bool {
	d := len(c.g.loops)
	for i < d {
		if c.instantiate(i) {
			i++
			continue
		}
		k := i - 1
		for {
			if k < 0 {
				return false
			}
			if c.step(k) {
				break
			}
			k--
		}
		i = k + 1
	}
	return true
}

// Next advances to the thread's next innermost iteration.
func (c *ThreadCursor) Next() bool {
	if c.done {
		return false
	}
	if !c.started {
		c.started = true
		if !c.seek(0) {
			c.done = true
			return false
		}
		c.count++
		return true
	}
	k := len(c.g.loops) - 1
	for {
		if k < 0 {
			c.done = true
			return false
		}
		if c.step(k) {
			break
		}
		k--
	}
	if !c.seek(k + 1) {
		c.done = true
		return false
	}
	c.count++
	return true
}

func tripCount(first, limit, step int64) int64 {
	if step > 0 {
		if first >= limit {
			return 0
		}
		return (limit - first + step - 1) / step
	}
	if first <= limit {
		return 0
	}
	return (first - limit + (-step) - 1) / (-step)
}

// CountIterations exhausts a fresh cursor for thread t and returns its
// iteration count. Intended for tests and sizing estimates.
func (g *Generator) CountIterations(t int) int64 {
	c := g.Cursor(t)
	for c.Next() {
	}
	return c.Count()
}

// TotalIterations sums iteration counts across all threads.
func (g *Generator) TotalIterations() int64 {
	var total int64
	for t := 0; t < g.plan.NumThreads; t++ {
		total += g.CountIterations(t)
	}
	return total
}
