package repro

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/sim"
)

// TestModelEqualsSimulatorOnRandomKernels cross-validates the two halves
// of the reproduction: for randomly generated small write-sharing loops
// whose working sets fit in the private caches, the compile-time model's
// FS count must equal the MESI simulator's coherence-miss count exactly —
// both count "accesses served by a remote Modified copy".
func TestModelEqualsSimulatorOnRandomKernels(t *testing.T) {
	r := rand.New(rand.NewSource(2012))
	for trial := 0; trial < 40; trial++ {
		n := int64(64 + r.Intn(8)*64)  // 64..512 elements
		stride := int64(1 + r.Intn(3)) // subscript coefficient
		chunk := int64(1 + r.Intn(4))  // schedule chunk
		threads := 2 + r.Intn(3)       // 2..4 threads
		writeBoth := r.Intn(2) == 1

		body := fmt.Sprintf("a[%d * i] += 1.0;", stride)
		if writeBoth {
			body = fmt.Sprintf("a[%d * i] += 1.0;\n    b[i] = a[%d * i];", stride, stride)
		}
		src := fmt.Sprintf(`
#define N %d
double a[%d];
double b[N];
#pragma omp parallel for schedule(static,%d) num_threads(%d)
for (i = 0; i < N; i++) {
    %s
}
`, n, n*stride, chunk, threads, body)

		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		a, err := prog.Analyze(0, Options{})
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		s, err := prog.Simulate(0, Options{})
		if err != nil {
			t.Fatalf("trial %d: simulate: %v", trial, err)
		}
		if a.FSCases != s.CoherenceMisses {
			t.Fatalf("trial %d (n=%d stride=%d chunk=%d threads=%d both=%v): model %d != sim %d",
				trial, n, stride, chunk, threads, writeBoth, a.FSCases, s.CoherenceMisses)
		}
	}
}

// TestSingleThreadHasNoFS: with one thread there is no other cache state
// for ϕ to find, in either the model or the simulator.
func TestSingleThreadHasNoFS(t *testing.T) {
	kern, err := kernels.LinReg(32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
		Machine: machine.Paper48(), NumThreads: 1, Chunk: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FSCases != 0 {
		t.Fatalf("single-thread FS = %d", res.FSCases)
	}
	st, err := sim.Run(kern.Nest, sim.Options{Machine: machine.Paper48(), NumThreads: 1, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoherenceMisses != 0 || st.Invalidations != 0 {
		t.Fatalf("single-thread sim coherence = %d/%d", st.CoherenceMisses, st.Invalidations)
	}
}

// TestPaperKernelsModelVsSimulatorAgreement: on the real paper kernels the
// FS counts and coherence misses track each other closely even where exact
// equality is not guaranteed (reads, multi-line structs, partial chunks).
func TestPaperKernelsModelVsSimulatorAgreement(t *testing.T) {
	cases := []struct {
		name  string
		nest  func() (*kernels.Kernel, error)
		chunk int64
	}{
		{"heat", func() (*kernels.Kernel, error) { return kernels.Heat(16, 512) }, 1},
		{"dft", func() (*kernels.Kernel, error) { return kernels.DFT(128) }, 1},
		{"linreg", func() (*kernels.Kernel, error) { return kernels.LinReg(64, 256, 4) }, 1},
	}
	for _, c := range cases {
		kern, err := c.nest()
		if err != nil {
			t.Fatal(err)
		}
		res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
			Machine: machine.Paper48(), NumThreads: 4, Chunk: c.chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(kern.Nest, sim.Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: c.chunk})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.FSCases) / float64(st.CoherenceMisses)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: model %d vs sim %d (ratio %.3f)", c.name, res.FSCases, st.CoherenceMisses, ratio)
		}
	}
}

// TestRecommendationImprovesSimulatedTime closes the loop the paper
// motivates: applying the model's recommended chunk makes the simulated
// program faster for every kernel.
func TestRecommendationImprovesSimulatedTime(t *testing.T) {
	for _, name := range kernels.Names() {
		kern, err := kernels.ByName(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(kern.Source)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Threads: 8}
		rec, err := prog.RecommendChunk(0, opts, []int64{1, 2, 4, 8, 16, 32, 64})
		if err != nil {
			t.Fatal(err)
		}
		bad := opts
		bad.Chunk = 1
		good := opts
		good.Chunk = rec.Chunk
		sBad, err := prog.Simulate(0, bad)
		if err != nil {
			t.Fatal(err)
		}
		sGood, err := prog.Simulate(0, good)
		if err != nil {
			t.Fatal(err)
		}
		if sGood.Seconds >= sBad.Seconds {
			t.Errorf("%s: recommended chunk %d (%.6fs) not faster than chunk 1 (%.6fs)",
				name, rec.Chunk, sGood.Seconds, sBad.Seconds)
		}
	}
}

// TestMatMulIsFSFree: the negative control — row-parallel matrix multiply
// shares arrays but never cache lines, so both detector and simulator
// must report zero FS at any chunk size.
func TestMatMulIsFSFree(t *testing.T) {
	kern, err := kernels.MatMul(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int64{1, 3, 8} {
		res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
			Machine: machine.Paper48(), NumThreads: 4, Chunk: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FSCases != 0 {
			t.Fatalf("chunk %d: model FS = %d, want 0", chunk, res.FSCases)
		}
		st, err := sim.Run(kern.Nest, sim.Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if st.CoherenceMisses != 0 {
			t.Fatalf("chunk %d: sim coherence misses = %d, want 0", chunk, st.CoherenceMisses)
		}
	}
}

// TestTestdataPrograms analyzes every committed sample program and checks
// the expected verdicts: the victims false-share, clean.c does not.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected sample programs, found %v", files)
	}
	wantFS := map[string]bool{
		"victim.c":              true,
		"accumulators.c":        true,
		"accumulators_padded.c": false,
		"stencil.c":             true,
		"clean.c":               false,
		"runtime_bounds.c":      true,
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		base := filepath.Base(path)
		want, known := wantFS[base]
		if !known {
			t.Fatalf("no expectation for %s — add one", base)
		}
		info, err := prog.Nest(0)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var fs int64
		if len(info.SymbolicParams) > 0 {
			rate, err := prog.AnalyzeRate(0, Options{Threads: 8}, 8)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			fs = rate.FSCases
		} else {
			a, err := prog.Analyze(0, Options{Threads: 8})
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			fs = a.FSCases
		}
		if want && fs == 0 {
			t.Errorf("%s: expected false sharing, found none", base)
		}
		if !want && fs != 0 {
			t.Errorf("%s: expected clean, found %d FS cases", base, fs)
		}
	}
}
