// Package repro is the public API of the reproduction of "Compile-Time
// Detection of False Sharing via Loop Cost Modeling" (Tolubaeva, Yan,
// Chapman; IPDPS Workshops 2012).
//
// The package analyzes OpenMP-style parallel loop nests written in a small
// C subset and, entirely at compile time (no execution of the loop),
//
//   - counts the false-sharing (FS) cases the loop will incur under a
//     given thread count and schedule(static,chunk) clause,
//   - expresses the FS overhead as a share of the loop's modeled
//     execution time (the paper's Equation 5), and
//   - predicts the FS total from a short prefix of "chunk runs" via
//     least-squares linear regression (the paper's Section III-E).
//
// A MESI cache-coherent multicore simulator is included as the "measured
// execution" reference, and Open64-style processor/cache/TLB/parallel cost
// models supply the time normalization.
//
// # Quick start
//
//	prog, err := repro.Parse(src)          // mini-C with #pragma omp
//	rep, err := prog.Analyze(0, repro.Options{Threads: 8, Chunk: 1})
//	fmt.Println(rep.FSCases, rep.FSShare)
//
// See examples/ for complete programs and cmd/fsrepro for the harness that
// regenerates every table and figure of the paper.
package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/costmodel"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/transform"
)

// Machine identifies a modeled target machine.
type Machine struct {
	desc *machine.Desc
}

// Paper48 is the paper's evaluation platform: four 12-core 2.2 GHz
// processors, 64 KB L1 + 512 KB L2 per core, 10 MB L3 per socket, 64-byte
// lines.
func Paper48() Machine { return Machine{desc: machine.Paper48()} }

// SmallTest is a tiny 4-core machine with small caches, useful for
// demonstrating capacity effects quickly.
func SmallTest() Machine { return Machine{desc: machine.SmallTest()} }

// Modern16 is a contemporary single-socket 16-core machine with larger
// caches and faster coherence, for checking conclusions beyond the
// paper's 2012 hardware.
func Modern16() Machine { return Machine{desc: machine.Modern16()} }

// MachineNames lists the names accepted by MachineByName.
func MachineNames() []string { return []string{"paper48", "smalltest", "modern16"} }

// MachineByName resolves a machine by its name ("paper48", "smalltest",
// "modern16"), the form configuration files and network requests carry.
func MachineByName(name string) (Machine, error) {
	switch name {
	case "", "paper48":
		return Paper48(), nil
	case "smalltest":
		return SmallTest(), nil
	case "modern16":
		return Modern16(), nil
	}
	return Machine{}, fmt.Errorf("repro: unknown machine %q (valid machines: %s)", name, strings.Join(MachineNames(), ", "))
}

// Name returns the machine's name.
func (m Machine) Name() string {
	if m.desc == nil {
		return "paper48"
	}
	return m.desc.Name
}

// Cores returns the machine's core count.
func (m Machine) Cores() int {
	if m.desc == nil {
		return machine.Paper48().Cores
	}
	return m.desc.Cores
}

func (m Machine) resolve() *machine.Desc {
	if m.desc == nil {
		return machine.Paper48()
	}
	return m.desc
}

// Options configures analysis, prediction and simulation.
type Options struct {
	// Machine defaults to Paper48.
	Machine Machine
	// Threads is the OpenMP team size (pragma num_threads wins if set in
	// the source). Defaults to the machine's core count.
	Threads int
	// Chunk is the schedule(static,chunk) chunk size (pragma wins if the
	// source specifies one). 0 selects the OpenMP default block schedule.
	Chunk int64
	// MESICounting switches FS detection from the paper's ϕ function to
	// write-invalidate-faithful counting.
	MESICounting bool
	// StackDepth bounds each thread's modeled cache state in lines
	// (0 = the machine's private cache capacity; negative = unbounded).
	StackDepth int
	// BusContention enables the simulator's shared-bus interference
	// model (the paper's future-work extension). It does not affect the
	// compile-time FS model.
	BusContention bool
	// TrackHotLines additionally attributes FS cases to individual cache
	// lines (Analysis.HotLines).
	TrackHotLines bool
	// Jobs bounds the worker pool used when an operation evaluates many
	// independent analysis points (RecommendChunk's candidate sweep);
	// <= 0 selects GOMAXPROCS. Results are identical for every value.
	Jobs int
	// Budget bounds the resources a model evaluation may consume (zero =
	// unlimited). A tripped budget surfaces as an error matching
	// guard.ErrBudgetExceeded; the stop point is deterministic for a
	// given input (step counts, not wall time, trigger the amortized
	// checks — the Deadline dimension alone depends on the clock). A
	// budget never changes the result of a run it does not abort.
	Budget guard.Budget
	// Eval selects the evaluation pipeline: "auto" (or empty — compile
	// the nest into an access-run plan, falling back to the interpreter
	// when it cannot be compiled), "compiled" (demand the compiled
	// executor; error if unavailable) or "interpreted" (the original
	// per-iteration reference evaluator). All pipelines produce
	// bit-identical counts; they differ only in speed.
	Eval string
	// Extrapolate lets eligible uniform loops stop simulating once their
	// per-chunk-run counter deltas are provably periodic and close the
	// remaining runs arithmetically. Exact (the differential suite
	// asserts equality with full simulation); ineligible or never-
	// periodic runs silently fall back to full simulation.
	Extrapolate bool
}

// CanonicalKey returns a deterministic, unambiguous encoding of every
// option field that can affect an analysis result. Two Options values with
// equal keys produce identical results from Analyze, AnalyzeRate, Predict,
// Simulate, EstimateCost, RecommendChunk and EvaluatePadding, so the key
// (combined with the source text) is a sound content address for caching
// model results. Jobs is deliberately excluded: it changes only how work
// is scheduled, never what is computed. Budget is excluded for the same
// reason: it can only abort a run, never alter the values a completed
// run computes, and aborted runs are never cached.
func (o Options) CanonicalKey() string {
	return fmt.Sprintf("machine=%s;threads=%d;chunk=%d;mesi=%t;stackdepth=%d;bus=%t;hotlines=%t;eval=%s;extrap=%t",
		o.Machine.Name(), o.Threads, o.Chunk, o.MESICounting, o.StackDepth, o.BusContention, o.TrackHotLines,
		o.evalName(), o.Extrapolate)
}

func (o Options) counting() fsmodel.CountingMode {
	if o.MESICounting {
		return fsmodel.CountMESI
	}
	return fsmodel.CountPaperPhi
}

// evalName normalizes the Eval spelling for the canonical key ("auto"
// for empty; unknown spellings pass through and fail at evaluation).
func (o Options) evalName() string {
	if o.Eval == "" {
		return "auto"
	}
	return o.Eval
}

func (o Options) evalMode() (fsmodel.EvalMode, error) {
	return fsmodel.EvalModeFromString(o.Eval)
}

// Program is a parsed and lowered mini-C translation unit.
type Program struct {
	unit *loopir.Unit
}

// Parse parses and lowers mini-C source text. References with non-affine
// subscripts are recorded as warnings and excluded from modeling, like a
// compiler marking a loop "not analyzable".
func Parse(src string) (*Program, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		return nil, err
	}
	return &Program{unit: unit}, nil
}

// NumNests returns the number of top-level loop nests in the program.
func (p *Program) NumNests() int { return len(p.unit.Nests) }

// Warnings returns lowering diagnostics (e.g. excluded non-affine
// references).
func (p *Program) Warnings() []string { return p.unit.Warnings }

// NestInfo describes one loop nest.
type NestInfo struct {
	Depth         int
	Vars          []string
	ParallelLevel int // 0 = outermost; -1 = sequential
	References    int
	Iterations    int64 // 0 if bounds are not compile-time constants
	Description   string
	// SymbolicParams lists loop-bound identifiers unknown at compile time
	// (e.g. a runtime "n"); such nests are analyzed with AnalyzeRate.
	SymbolicParams []string
}

// Nest returns information about nest i.
func (p *Program) Nest(i int) (NestInfo, error) {
	n, err := p.nest(i)
	if err != nil {
		return NestInfo{}, err
	}
	total, _ := n.TotalIterations()
	info := NestInfo{
		Depth:         n.Depth(),
		Vars:          n.Vars(),
		ParallelLevel: n.ParLevel,
		References:    len(n.Refs),
		Iterations:    total,
		Description:   n.String(),
	}
	for _, p := range n.Params() {
		info.SymbolicParams = append(info.SymbolicParams, p[1:])
	}
	return info, nil
}

func (p *Program) nest(i int) (*loopir.Nest, error) {
	if i < 0 || i >= len(p.unit.Nests) {
		return nil, fmt.Errorf("repro: nest index %d out of range (program has %d)", i, len(p.unit.Nests))
	}
	return p.unit.Nests[i], nil
}

// Analysis is the result of the compile-time FS cost model on one nest.
type Analysis struct {
	// FSCases is the modeled total number of false-sharing cases.
	FSCases int64
	// FSShare is the modeled fraction of loop execution time lost to
	// false sharing (Equation 1's FS term over Total_c).
	FSShare float64
	// Iterations is the total innermost-loop iterations; FSPerIteration
	// is the FS density.
	Iterations     int64
	FSPerIteration float64
	// ChunkRuns is the loop's total number of team cycles (x_max).
	ChunkRuns int64
	// Threads and Chunk echo the resolved schedule.
	Threads int
	Chunk   int64
	// SkippedRefs lists references excluded from modeling.
	SkippedRefs []string
	// Victims attributes the FS cases to source references, worst first —
	// the "which data structure is the victim" answer the paper motivates.
	Victims []Victim
	// HotLines lists the most-contended cache lines (top 10), present when
	// Options.TrackHotLines is set.
	HotLines []HotLine
	// Eval reports which evaluation pipeline actually ran ("compiled" or
	// "interpreted"; Options.Eval "auto" resolves to one of them).
	Eval string
	// Extrapolated reports that the steady-state closure produced the
	// totals from a simulated prefix (Options.Extrapolate).
	Extrapolated bool
}

// HotLine is one contended cache line, resolved to the symbol holding it.
type HotLine struct {
	Symbol  string
	Offset  int64 // byte offset of the line within the symbol
	FSCases int64
}

// Victim is one source reference's share of the false-sharing cases.
type Victim struct {
	Ref     string // source text, e.g. "tid_args[j].sx"
	Symbol  string
	Write   bool
	FSCases int64
}

// Analyze runs the FS cost model on nest i.
func (p *Program) Analyze(i int, opts Options) (*Analysis, error) {
	n, err := p.nest(i)
	if err != nil {
		return nil, err
	}
	m := opts.Machine.resolve()
	eval, err := opts.evalMode()
	if err != nil {
		return nil, err
	}
	res, err := fsmodel.Analyze(n, fsmodel.Options{
		Machine:       m,
		NumThreads:    opts.Threads,
		Chunk:         opts.Chunk,
		StackDepth:    opts.StackDepth,
		Counting:      opts.counting(),
		TrackHotLines: opts.TrackHotLines,
		Budget:        opts.Budget,
		Eval:          eval,
		Extrapolate:   opts.Extrapolate,
	})
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		FSCases:        res.FSCases,
		Iterations:     res.Iterations,
		FSPerIteration: res.FSPerIteration(),
		ChunkRuns:      res.ChunkRunsTotal,
		Threads:        res.Plan.NumThreads,
		Chunk:          res.Plan.Chunk,
		SkippedRefs:    res.SkippedRefs,
		Eval:           res.Eval.String(),
		Extrapolated:   res.Extrapolated,
	}
	for _, v := range res.Victims() {
		a.Victims = append(a.Victims, Victim{Ref: v.Src, Symbol: v.Symbol, Write: v.Write, FSCases: v.FSCases})
	}
	for _, h := range res.HotLines(n, m.LineSize, 10) {
		a.HotLines = append(a.HotLines, HotLine{Symbol: h.Symbol, Offset: h.Offset, FSCases: h.FSCases})
	}
	if base, err := costmodel.Estimate(n, m, res.Plan); err == nil {
		coher := float64(m.CoherenceLatency)
		totalWork := base.PerIter()*float64(base.TotalIterations) + base.ParallelOverhead
		fsWork := float64(res.FSCases) * coher
		if totalWork+fsWork > 0 {
			a.FSShare = fsWork / (totalWork + fsWork)
		}
	}
	return a, nil
}

// RateReport is the analysis of a loop whose bounds are unknown at
// compile time: the paper's fallback of an FS rate per chunk run
// (Section III) instead of a whole-loop total.
type RateReport struct {
	// FSPerChunkRun is the steady-state FS cases per full team cycle.
	FSPerChunkRun float64
	// FSCases and RunsEvaluated describe the evaluated prefix.
	FSCases       int64
	RunsEvaluated int64
	// Assumed maps each unknown bound to the synthetic value substituted
	// to evaluate the prefix.
	Assumed map[string]int64
	Threads int
	Chunk   int64
}

// AnalyzeRate analyzes nest i for `runs` chunk runs and reports the FS
// rate — the API for loops whose bounds are only known at run time.
func (p *Program) AnalyzeRate(i int, opts Options, runs int64) (*RateReport, error) {
	n, err := p.nest(i)
	if err != nil {
		return nil, err
	}
	eval, err := opts.evalMode()
	if err != nil {
		return nil, err
	}
	res, err := fsmodel.AnalyzeRate(n, fsmodel.Options{
		Machine:    opts.Machine.resolve(),
		NumThreads: opts.Threads,
		Chunk:      opts.Chunk,
		StackDepth: opts.StackDepth,
		Counting:   opts.counting(),
		Budget:     opts.Budget,
		Eval:       eval,
	}, runs)
	if err != nil {
		return nil, err
	}
	return &RateReport{
		FSPerChunkRun: res.FSPerChunkRun,
		FSCases:       res.FSCases,
		RunsEvaluated: res.ChunkRunsEvaluated,
		Assumed:       res.Assumed,
		Threads:       res.Plan.NumThreads,
		Chunk:         res.Plan.Chunk,
	}, nil
}

// Prediction is the linear-regression extrapolation of the FS total.
type Prediction struct {
	PredictedFS int64
	SampledRuns int64
	TotalRuns   int64
	Slope       float64
	Intercept   float64
	R2          float64
	// SpeedupFactor is full-model iterations over sampled iterations —
	// the modeling-time reduction the prediction buys.
	SpeedupFactor float64
}

// Predict extrapolates nest i's FS total from sampleRuns chunk runs.
func (p *Program) Predict(i int, opts Options, sampleRuns int64) (*Prediction, error) {
	n, err := p.nest(i)
	if err != nil {
		return nil, err
	}
	eval, err := opts.evalMode()
	if err != nil {
		return nil, err
	}
	pred, err := fsmodel.Predict(n, fsmodel.Options{
		Machine:    opts.Machine.resolve(),
		NumThreads: opts.Threads,
		Chunk:      opts.Chunk,
		StackDepth: opts.StackDepth,
		Counting:   opts.counting(),
		Budget:     opts.Budget,
		Eval:       eval,
	}, sampleRuns)
	if err != nil {
		return nil, err
	}
	out := &Prediction{
		PredictedFS: pred.PredictedFS,
		SampledRuns: pred.SampledRuns,
		TotalRuns:   pred.TotalRuns,
		Slope:       pred.Fit.A,
		Intercept:   pred.Fit.B,
		R2:          pred.Fit.R2,
	}
	total, ok := n.TotalIterations()
	if ok && pred.IterationsEvaluated > 0 {
		out.SpeedupFactor = float64(total) / float64(pred.IterationsEvaluated)
	}
	return out, nil
}

// SimReport is the outcome of simulated execution on the modeled machine.
type SimReport struct {
	Seconds         float64
	WallCycles      float64
	CoherenceMisses int64
	Invalidations   int64
	L1Hits          int64
	L2Hits          int64
	L3Hits          int64
	MemFills        int64
	Accesses        int64
	// ContentionCycles is nonzero only with Options.BusContention.
	ContentionCycles float64
}

// Simulate executes nest i on the MESI machine simulator.
func (p *Program) Simulate(i int, opts Options) (*SimReport, error) {
	n, err := p.nest(i)
	if err != nil {
		return nil, err
	}
	st, err := sim.Run(n, sim.Options{
		Machine:            opts.Machine.resolve(),
		NumThreads:         opts.Threads,
		Chunk:              opts.Chunk,
		ModelBusContention: opts.BusContention,
	})
	if err != nil {
		return nil, err
	}
	return &SimReport{
		Seconds:          st.Seconds,
		WallCycles:       st.WallCycles,
		CoherenceMisses:  st.CoherenceMisses,
		Invalidations:    st.Invalidations,
		L1Hits:           st.L1Hits,
		L2Hits:           st.L2Hits,
		L3Hits:           st.L3Hits,
		MemFills:         st.MemFills,
		Accesses:         st.Accesses,
		ContentionCycles: st.ContentionCycles,
	}, nil
}

// CostReport is the Open64-style cost breakdown (Equation 1) for one nest.
type CostReport struct {
	MachinePerIter      float64
	CachePerIter        float64
	TLBPerIter          float64
	LoopOverheadPerIter float64
	ParallelOverhead    float64
	BaseWallCycles      float64
	TotalWallCycles     float64 // including the FS term
	FSCycles            float64
}

// EstimateCost evaluates Equation 1 for nest i, combining the base cost
// models with the FS model.
func (p *Program) EstimateCost(i int, opts Options) (*CostReport, error) {
	n, err := p.nest(i)
	if err != nil {
		return nil, err
	}
	m := opts.Machine.resolve()
	eval, err := opts.evalMode()
	if err != nil {
		return nil, err
	}
	res, err := fsmodel.Analyze(n, fsmodel.Options{
		Machine:     m,
		NumThreads:  opts.Threads,
		Chunk:       opts.Chunk,
		StackDepth:  opts.StackDepth,
		Counting:    opts.counting(),
		Budget:      opts.Budget,
		Eval:        eval,
		Extrapolate: opts.Extrapolate,
	})
	if err != nil {
		return nil, err
	}
	base, err := costmodel.Estimate(n, m, res.Plan)
	if err != nil {
		return nil, err
	}
	total := base.TotalWithFS(res.FSCases, m, res.Plan.NumThreads)
	return &CostReport{
		MachinePerIter:      base.MachinePerIter,
		CachePerIter:        base.CachePerIter,
		TLBPerIter:          base.TLBPerIter,
		LoopOverheadPerIter: base.LoopOverheadPerIter,
		ParallelOverhead:    base.ParallelOverhead,
		BaseWallCycles:      base.BaseWallCycles,
		TotalWallCycles:     total,
		FSCycles:            total - base.BaseWallCycles,
	}, nil
}

// ChunkRecommendation is the model-guided schedule choice (the paper's
// envisioned compiler use: pick the chunk size that minimizes Total_c).
type ChunkRecommendation struct {
	Chunk       int64
	FSCases     int64
	TotalCycles float64
	// Evaluated lists every candidate with its modeled cost.
	Evaluated []ChunkCandidate
}

// ChunkCandidate is one evaluated chunk size.
type ChunkCandidate struct {
	Chunk       int64
	FSCases     int64
	TotalCycles float64
}

// RecommendChunk evaluates the candidate chunk sizes with the combined
// cost model (Equation 1) and returns the cheapest. A nil candidates slice
// evaluates powers of two 1..128.
func (p *Program) RecommendChunk(i int, opts Options, candidates []int64) (*ChunkRecommendation, error) {
	return p.RecommendChunkCtx(context.Background(), i, opts, candidates)
}

// RecommendChunkCtx is RecommendChunk under a context: a cancelled or
// expired ctx stops the candidate sweep promptly and returns ctx.Err().
func (p *Program) RecommendChunkCtx(ctx context.Context, i int, opts Options, candidates []int64) (*ChunkRecommendation, error) {
	if len(candidates) == 0 {
		for c := int64(1); c <= 128; c *= 2 {
			candidates = append(candidates, c)
		}
	}
	// Candidates are independent model evaluations: fan them out on the
	// sweep pool. Results come back in candidate order, so the tie-break
	// (first candidate with the lowest cost wins) is deterministic.
	evaluated, err := sweep.Run(ctx, len(candidates), opts.Jobs, func(_ context.Context, idx int) (ChunkCandidate, error) {
		c := candidates[idx]
		o := opts
		o.Chunk = c
		cost, err := p.EstimateCost(i, o)
		if err != nil {
			return ChunkCandidate{}, fmt.Errorf("repro: chunk %d: %w", c, err)
		}
		a, err := p.Analyze(i, o)
		if err != nil {
			return ChunkCandidate{}, err
		}
		return ChunkCandidate{Chunk: c, FSCases: a.FSCases, TotalCycles: cost.TotalWallCycles}, nil
	})
	if err != nil {
		return nil, err
	}
	best := &ChunkRecommendation{Evaluated: evaluated}
	for _, cand := range evaluated {
		if best.Chunk == 0 || cand.TotalCycles < best.TotalCycles {
			best.Chunk = cand.Chunk
			best.FSCases = cand.FSCases
			best.TotalCycles = cand.TotalCycles
		}
	}
	return best, nil
}

// ClosedFormAdvice is the static linter's verdict and schedule advice for
// one loop nest: whether any write is false-sharing prone or racy under
// the current plan, and the verified aligning chunk size if one exists.
type ClosedFormAdvice struct {
	// Prone reports whether any written reference in the nest is
	// statically false-sharing prone under the current schedule.
	Prone bool
	// Race reports whether two chunks can touch the same element (a true
	// data race, not mere line sharing).
	Race bool
	// Chunk is the smallest verified schedule(static,chunk) size that
	// removes every detected conflict, or 0 when none was found or none
	// is needed.
	Chunk int64
	// Exact is false when symbolic loop bounds forced assumed trip
	// counts, making the verdict a heuristic rather than a proof.
	Exact bool
	// Findings counts the nest's diagnostics at warning severity or
	// above.
	Findings int
}

// RecommendChunkClosedForm answers RecommendChunk's question — what
// schedule(static,chunk) avoids false sharing — with the closed-form
// linter (internal/analysis) instead of the candidate cost sweep: no
// simulation, no per-candidate model evaluation, and cost independent of
// the trip count. It returns the verified aligning chunk when the nest is
// prone and one exists; RecommendChunk remains the right tool when the
// answer must weigh FS against dispatch overhead across candidates.
func (p *Program) RecommendChunkClosedForm(i int, opts Options) (*ClosedFormAdvice, error) {
	if i < 0 || i >= len(p.unit.Nests) {
		return nil, fmt.Errorf("repro: nest %d out of range (program has %d)", i, len(p.unit.Nests))
	}
	rep, err := analysis.Analyze(p.unit, analysis.Config{
		Machine: opts.Machine.resolve(),
		Threads: opts.Threads,
		Chunk:   opts.Chunk,
	})
	if err != nil {
		return nil, err
	}
	adv := &ClosedFormAdvice{Exact: true}
	for _, v := range rep.Verdicts {
		if v.Nest != i {
			continue
		}
		adv.Prone = adv.Prone || v.Prone
		adv.Race = adv.Race || v.Race
		adv.Exact = adv.Exact && v.Exact
	}
	for _, d := range rep.Diagnostics {
		if d.Nest != i {
			continue
		}
		if d.Severity >= analysis.SeverityWarning {
			adv.Findings++
		}
		if d.Code == analysis.CodeFixChunk && (adv.Chunk == 0 || d.SuggestedChunk < adv.Chunk) {
			adv.Chunk = d.SuggestedChunk
		}
	}
	return adv, nil
}

// PaddingAdvice is the outcome of evaluating the struct-padding
// transformation with the cost model (the paper's future-work item,
// implemented in internal/transform).
type PaddingAdvice struct {
	// Changes lists the padded structs as human-readable descriptions.
	Changes []string
	// FS cases before and after padding.
	OrigFSCases int64
	NewFSCases  int64
	// Equation 1 totals (cycles) before and after.
	OrigCycles float64
	NewCycles  float64
	// Apply reports whether the model judges the transformation
	// profitable.
	Apply bool
}

// EvaluatePadding pads every victim struct to a cache-line multiple and
// prices the transformation with the combined cost model: FS savings
// against footprint growth.
func (p *Program) EvaluatePadding(i int, opts Options) (*PaddingAdvice, error) {
	eval, err := opts.evalMode()
	if err != nil {
		return nil, err
	}
	d, err := transform.EvaluatePadding(p.unit.Prog, i, fsmodel.Options{
		Machine:     opts.Machine.resolve(),
		NumThreads:  opts.Threads,
		Chunk:       opts.Chunk,
		StackDepth:  opts.StackDepth,
		Counting:    opts.counting(),
		Budget:      opts.Budget,
		Eval:        eval,
		Extrapolate: opts.Extrapolate,
	})
	if err != nil {
		return nil, err
	}
	adv := &PaddingAdvice{
		OrigFSCases: d.OrigFSCases,
		NewFSCases:  d.NewFSCases,
		OrigCycles:  d.OrigCycles,
		NewCycles:   d.NewCycles,
		Apply:       d.Apply,
	}
	for _, c := range d.Changes {
		adv.Changes = append(adv.Changes, c.String())
	}
	return adv, nil
}

// Interpret executes the whole program sequentially with the reference
// interpreter and returns an accessor for reading results (for validating
// that a kernel computes what it should).
func (p *Program) Interpret() (*Interpreter, error) {
	m := interp.New(p.unit)
	if err := m.Run(); err != nil {
		return nil, err
	}
	return &Interpreter{m: m}, nil
}

// Interpreter exposes the memory of an interpreted program run.
type Interpreter struct {
	m *interp.Machine
}

// Read returns the value at a reference like "args[3].sx".
func (it *Interpreter) Read(expr string) (float64, error) { return it.m.Read(expr) }
