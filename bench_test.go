// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md and micro-benchmarks of the hot paths.
//
// Each experiment benchmark regenerates its table/figure per iteration and
// reports the headline quantities as benchmark metrics (percentages scaled
// ×100). Run with -v to also see the rendered rows.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable1Heat -v        # rendered table
package repro

import (
	"bytes"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/sim"
)

// benchConfig keeps the paper's kernel sizes but trims the thread axis so
// the full suite completes in minutes; cmd/fsrepro regenerates the full
// eight-point axis.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Threads = []int{2, 8, 48}
	return cfg
}

func reportTable(b *testing.B, t *experiments.TableResult) {
	b.Helper()
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(last.MeasuredPct*100, "measured-%")
	b.ReportMetric(last.ModeledPct*100, "modeled-%")
	b.ReportMetric(float64(last.NFS), "N_fs")
	var buf bytes.Buffer
	if err := t.Render(&buf); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + buf.String())
}

func reportPrediction(b *testing.B, t *experiments.PredictionTableResult) {
	b.Helper()
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(float64(last.PredFS), "pred-FS")
	b.ReportMetric(float64(last.ModelFS), "model-FS")
	b.ReportMetric(last.R2FS, "R2")
	var buf bytes.Buffer
	if err := t.Render(&buf); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkTable1Heat regenerates Table I: measured vs modeled FS overhead
// for the heat diffusion kernel.
func BenchmarkTable1Heat(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table(cfg, "heat")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable(b, t)
		}
	}
}

// BenchmarkTable2DFT regenerates Table II for the DFT kernel.
func BenchmarkTable2DFT(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table(cfg, "dft")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable(b, t)
		}
	}
}

// BenchmarkTable3LinReg regenerates Table III for the linear-regression
// kernel (the paper's divergent case).
func BenchmarkTable3LinReg(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table(cfg, "linreg")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable(b, t)
		}
	}
}

// BenchmarkTable4HeatPrediction regenerates Table IV: linear-regression
// prediction vs full model, heat kernel, 20 chunk runs.
func BenchmarkTable4HeatPrediction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.PredictionTable(cfg, "heat")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportPrediction(b, t)
		}
	}
}

// BenchmarkTable5DFTPrediction regenerates Table V (DFT, 50 chunk runs).
func BenchmarkTable5DFTPrediction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.PredictionTable(cfg, "dft")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportPrediction(b, t)
		}
	}
}

// BenchmarkTable6LinRegPrediction regenerates Table VI (linreg, 10 runs).
func BenchmarkTable6LinRegPrediction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.PredictionTable(cfg, "linreg")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportPrediction(b, t)
		}
	}
}

// BenchmarkFig2ChunkSweep regenerates Figure 2: execution time vs chunk
// size for the linear-regression kernel.
func BenchmarkFig2ChunkSweep(b *testing.B) {
	cfg := benchConfig()
	chunks := []int64{1, 2, 4, 8, 12, 16, 20, 24, 30}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2ChunkSweep(cfg, 8, chunks)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.ImprovementPct*100, "improvement-%")
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig6Linearity regenerates Figure 6: FS cases vs chunk runs,
// with the linearity (R²) of the series as the reported metric.
func BenchmarkFig6Linearity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Linearity(cfg, "heat", 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Series[0].Fit.R2, "R2")
			b.ReportMetric(res.Series[0].Fit.A, "FS-per-run")
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig8HeatSummary regenerates Figure 8 (measured vs modeled vs
// predicted, heat).
func BenchmarkFig8HeatSummary(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigSummary(cfg, "heat")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Measured*100, "measured-%")
			b.ReportMetric(last.Modeled*100, "modeled-%")
			b.ReportMetric(last.Predicted*100, "predicted-%")
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig9DFTSummary regenerates Figure 9 (same, DFT).
func BenchmarkFig9DFTSummary(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.FigSummary(cfg, "dft")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Measured*100, "measured-%")
			b.ReportMetric(last.Modeled*100, "modeled-%")
			b.ReportMetric(last.Predicted*100, "predicted-%")
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + buf.String())
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationAssociativity compares the paper's fully-associative
// cache states against 16-way set-associative ones: the FS counts should
// coincide (the paper's justification for the simplification), at
// different modeling cost.
func BenchmarkAblationAssociativity(b *testing.B) {
	kern, err := kernels.LinReg(256, 1024, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, assoc := range []int64{0, 16} {
		name := "fully-assoc"
		if assoc > 0 {
			name = "16-way"
		}
		b.Run(name, func(b *testing.B) {
			var fs int64
			for i := 0; i < b.N; i++ {
				res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
					Machine: machine.Paper48(), NumThreads: 8, Chunk: 1, Associativity: assoc,
				})
				if err != nil {
					b.Fatal(err)
				}
				fs = res.FSCases
			}
			b.ReportMetric(float64(fs), "FS-cases")
		})
	}
}

// BenchmarkAblationPhiVsMESI compares the paper's ϕ counting with the
// MESI-faithful variant on a mixed read/write victim.
func BenchmarkAblationPhiVsMESI(b *testing.B) {
	kern, err := kernels.Heat(48, 2048)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []fsmodel.CountingMode{fsmodel.CountPaperPhi, fsmodel.CountMESI} {
		b.Run(mode.String(), func(b *testing.B) {
			var fs, inv int64
			for i := 0; i < b.N; i++ {
				res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
					Machine: machine.Paper48(), NumThreads: 8, Chunk: 1, Counting: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				fs, inv = res.FSCases, res.Invalidations
			}
			b.ReportMetric(float64(fs), "FS-cases")
			b.ReportMetric(float64(inv), "invalidations")
		})
	}
}

// BenchmarkAblationPredictionSamples measures prediction error and cost as
// the number of sampled chunk runs grows.
func BenchmarkAblationPredictionSamples(b *testing.B) {
	kern, err := kernels.Heat(48, 2048)
	if err != nil {
		b.Fatal(err)
	}
	opts := fsmodel.Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1}
	full, err := fsmodel.Analyze(kern.Nest, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, runs := range []int64{5, 20, 80} {
		b.Run(benchName("runs", runs), func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				p, err := fsmodel.Predict(kern.Nest, opts, runs)
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * float64(p.PredictedFS-full.FSCases) / float64(full.FSCases)
			}
			b.ReportMetric(errPct, "error-%")
		})
	}
}

// BenchmarkAblationStackDepth compares unbounded cache states against the
// machine's private-cache depth and a severely truncated one.
func BenchmarkAblationStackDepth(b *testing.B) {
	kern, err := kernels.DFT(512)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{-1, 0, 64} {
		name := "machine"
		switch {
		case depth < 0:
			name = "unbounded"
		case depth > 0:
			name = benchName("lines", int64(depth))
		}
		b.Run(name, func(b *testing.B) {
			var fs int64
			for i := 0; i < b.N; i++ {
				res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{
					Machine: machine.Paper48(), NumThreads: 8, Chunk: 1, StackDepth: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				fs = res.FSCases
			}
			b.ReportMetric(float64(fs), "FS-cases")
		})
	}
}

// --- Hot-path micro-benchmarks ---

// BenchmarkModelPerAccess measures the FS model's per-access cost, the
// quantity that bounds how large a loop the compiler can afford to model.
func BenchmarkModelPerAccess(b *testing.B) {
	kern, err := kernels.Heat(48, 2048)
	if err != nil {
		b.Fatal(err)
	}
	res, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1})
	if err != nil {
		b.Fatal(err)
	}
	accessesPerRun := res.Accesses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fsmodel.Analyze(kern.Nest, fsmodel.Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(accessesPerRun), "ns/access")
}

// BenchmarkSimulatorPerAccess measures the MESI simulator's per-access
// cost.
func BenchmarkSimulatorPerAccess(b *testing.B) {
	kern, err := kernels.Heat(48, 2048)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sim.Run(kern.Nest, sim.Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1})
	if err != nil {
		b.Fatal(err)
	}
	accesses := st.Accesses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(kern.Nest, sim.Options{Machine: machine.Paper48(), NumThreads: 8, Chunk: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(accesses), "ns/access")
}

// BenchmarkParseAndLower measures front-end cost on the largest kernel
// source.
func BenchmarkParseAndLower(b *testing.B) {
	src := kernels.LinRegSource(9600, 76800, 48)
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int64) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}

// BenchmarkAblationCacheModel compares the Open64-style footprint cache
// model against the stack-distance (reuse-distance) refinement on the
// heat kernel: accuracy vs modeling cost.
func BenchmarkAblationCacheModel(b *testing.B) {
	kern, err := kernels.Heat(48, 2048)
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Paper48()
	b.Run("footprint", func(b *testing.B) {
		var per float64
		for i := 0; i < b.N; i++ {
			per, _ = costmodel.CacheModel(kern.Nest, m)
		}
		b.ReportMetric(per, "cycles/iter")
	})
	b.Run("reuse-distance", func(b *testing.B) {
		var per float64
		for i := 0; i < b.N; i++ {
			rd, err := costmodel.CacheModelReuseDistance(kern.Nest, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			per = rd.CachePerIter
		}
		b.ReportMetric(per, "cycles/iter")
	})
}

// BenchmarkAblationBusContention measures the paper's future-work bus
// interference extension: the same streaming loop with and without the
// shared-bus model, at two team sizes.
func BenchmarkAblationBusContention(b *testing.B) {
	kern, err := kernels.DFT(512)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{4, 48} {
		for _, bus := range []bool{false, true} {
			name := benchName("threads", int64(threads)) + "-nobus"
			if bus {
				name = benchName("threads", int64(threads)) + "-bus"
			}
			b.Run(name, func(b *testing.B) {
				var wall float64
				for i := 0; i < b.N; i++ {
					st, err := sim.Run(kern.Nest, sim.Options{
						Machine: machine.Paper48(), NumThreads: threads, Chunk: 16,
						ModelBusContention: bus,
					})
					if err != nil {
						b.Fatal(err)
					}
					wall = st.WallCycles
				}
				b.ReportMetric(wall, "wall-cycles")
			})
		}
	}
}
