/* Inner-parallel five-point stencil, the paper's heat-diffusion shape:
 * neighbouring columns are written by neighbouring threads. */
#define M 64
#define N 2048

double A[M][N];
double B[M][N];

for (j = 1; j < M - 1; j++)
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 1; i < N - 1; i++)
    B[j][i] = 0.25 * (A[j][i-1] + A[j][i+1] + A[j-1][i] + A[j+1][i]);
