/* Trip count only known at run time: the analysis reports an FS rate per
 * chunk run instead of a whole-loop total (the paper's Section III
 * fallback).
 *   go run ./cmd/fsdetect testdata/runtime_bounds.c
 */
double sums[65536];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < n; i++)
    sums[i] += 1.0;
