/* No false sharing: each thread owns whole cache lines (chunk 8 doubles
 * = one 64-byte line) and the read-only input is shared harmlessly. */
#define N 4096

double out[N];
double in[N];

#pragma omp parallel for private(i) schedule(static,8) num_threads(8)
for (i = 0; i < N; i++)
    out[i] = in[i] * 2.0 + 1.0;
