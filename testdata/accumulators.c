/* The paper's Fig. 1 pattern: an array of 40-byte accumulator structs.
 * Adjacent elements share a 64-byte line; schedule(static,1) hands
 * adjacent elements to different threads. */
#define TASKS 512
#define POINTS 64

struct Acc { double sx; double sxx; double sy; double syy; double sxy; };

struct Acc acc[TASKS];
double px[TASKS][POINTS];
double py[TASKS][POINTS];

#pragma omp parallel for private(i, j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++)
  for (i = 0; i < POINTS; i++) {
    acc[j].sx  += px[j][i];
    acc[j].sxx += px[j][i] * px[j][i];
    acc[j].sy  += py[j][i];
    acc[j].syy += py[j][i] * py[j][i];
    acc[j].sxy += px[j][i] * py[j][i];
  }
