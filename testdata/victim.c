/* Classic false-sharing victim: adjacent array elements updated by
 * adjacent threads. Try:
 *   go run ./cmd/fsdetect testdata/victim.c
 *   go run ./cmd/fschunk -verify testdata/victim.c
 */
#define N 4096

double hist[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    hist[i] += data[i] * data[i];
