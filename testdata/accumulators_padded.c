/* The padded variant of accumulators.c: 24 bytes of tail padding round
 * each 40-byte accumulator up to one 64-byte cache line, so adjacent
 * tasks never share a line and fslint reports the loop clean even at
 * schedule(static,1). */
#define TASKS 512
#define POINTS 64

struct Acc { double sx; double sxx; double sy; double syy; double sxy; double pad[3]; };

struct Acc acc[TASKS];
double px[TASKS][POINTS];
double py[TASKS][POINTS];

#pragma omp parallel for private(i, j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++)
  for (i = 0; i < POINTS; i++) {
    acc[j].sx  += px[j][i];
    acc[j].sxx += px[j][i] * px[j][i];
    acc[j].sy  += py[j][i];
    acc[j].syy += py[j][i] * py[j][i];
    acc[j].sxy += px[j][i] * py[j][i];
  }
